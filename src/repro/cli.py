"""Command-line interface: ``repro-idling``.

Subcommands
-----------
``run <experiment> [--out DIR] [--vehicles N] [--fast] [--jobs N] [--no-cache] [--ledger PATH]``
    Run one paper experiment (fig1..fig6, table1, appc) and print its
    ASCII report; ``--out`` also writes the CSV series.  ``--jobs``
    fans the work out over worker processes (results are bit-identical
    for any worker count); ``--no-cache`` bypasses the on-disk result
    cache; ``--ledger`` writes a JSONL event log (task lifecycle,
    retries, pool crashes, cache hits) and prints its summary next to
    the timings.
``list``
    List available experiments.
``all [--out DIR] [--fast] [--jobs N] [--no-cache] [--ledger PATH]``
    Run every experiment in sequence (one ledger spans the batch).
``cache [clear|info|doctor]``
    Inspect, empty, or health-check the on-disk result cache
    (``~/.cache/repro-idling`` unless ``REPRO_CACHE_DIR`` is set);
    ``doctor`` scans for orphaned temp files and invalid entries.
``advise --stops <csv-or-values> --break-even B``
    The end-user feature: given observed stop lengths, print which
    strategy the proposed algorithm selects and its guarantee.
``breakeven [--displacement D] [--fuel-price P] [--conventional] ...``
    Derive the break-even interval from the Appendix C cost model for a
    custom vehicle.
``simulate --area NAME [--days N] [--conventional] [--seed S]``
    Synthesize one vehicle in an area, learn the policy from its first
    half, and report the deployed second half's fuel/money outcome
    against the clairvoyant optimum and the factory default.
``risk --stops <csv-or-values> [--break-even B]``
    Mean/std weekly-cost table per strategy with Pareto-efficiency flags.
``dataset <dir> [--seed S] [--vehicles N]``
    Generate and persist the synthetic evaluation dataset.
``data doctor <path> [--policy P] [--report FILE] [--ledger FILE]``
    Diagnose a data file or dataset directory: run every ingestion
    check, print the validation report, optionally write it as JSON
    and/or divert bad records to quarantine sidecars.  Exits non-zero
    when error-grade issues remain unhandled.
``serve <events> --state-dir DIR [--policy P] [--ledger FILE] ...``
    The crash-safe online advisor: stream JSONL stop events (a file or
    ``-`` for stdin) through durable per-vehicle sessions with drift
    detection and graceful degradation; prints the fleet health
    snapshot (``--health FILE`` also writes it as JSON).  Restarting
    with the same ``--state-dir`` recovers every session bit-identically.
``ledger <path>``
    Summarize a JSONL run ledger (tolerates a truncated final line —
    the crash-tolerant reader) including advisor state transitions.

``run``/``all`` additionally accept ``--dataset DIR`` (evaluate an
on-disk fleet dataset instead of synthesizing — fig3/fig4/table1) and
``--policy {strict,repair,quarantine}`` governing its ingestion;
``advise``/``risk`` accept the same ``--policy`` for their stop input.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .constants import B_SSV
from .core import ConstrainedSkiRentalSolver, StopStatistics
from .engine import ResultCache, RunLedger, get_default_jobs, use_ledger
from .errors import ReproError
from .experiments import EXPERIMENTS, cached_run, format_table
from .validation import Policy

_POLICY_CHOICES = tuple(member.value for member in Policy)

__all__ = ["main", "build_parser"]

#: Reduced-size parameters for ``--fast`` runs (previews / smoke tests).
_FAST_PARAMS = {
    "fig1": {"mu_points": 31, "q_points": 31},
    "fig2": {"points": 40},
    "fig3": {"vehicles_per_area": 40},
    "fig4": {"vehicles_per_area": 40},
    "fig5": {"vehicles_per_point": 10, "stops_per_vehicle": 40, "grid_size": 128},
    "fig6": {"vehicles_per_point": 10, "stops_per_vehicle": 40, "grid_size": 128},
    "table1": {"vehicles_per_area": 60},
    "appc": {},
    "improved": {"mu_points": 31, "q_points": 31},
    "holdout": {"vehicles_per_area": 40},
    "seeds": {"seeds": (1, 2, 3), "vehicles_per_area": 40},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-idling",
        description=(
            "Reproduction of 'A Cost Efficient Online Algorithm for "
            "Automotive Idling Reduction' (DAC 2014)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one experiment")
    run_cmd.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_cmd.add_argument("--out", type=Path, default=None, help="CSV output directory")
    run_cmd.add_argument(
        "--vehicles", type=int, default=None, help="vehicles per area override"
    )
    run_cmd.add_argument(
        "--fast", action="store_true", help="reduced sizes for a quick preview"
    )
    run_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or 1); results are "
        "bit-identical for any value",
    )
    run_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even if a cached result exists",
    )
    run_cmd.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="write a JSONL run ledger (task/retry/pool-crash/cache events) "
        "to this path and print its summary with the report",
    )
    run_cmd.add_argument(
        "--dataset",
        type=Path,
        default=None,
        help="evaluate an on-disk fleet dataset (fig3/fig4/table1) instead "
        "of synthesizing one",
    )
    run_cmd.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="strict",
        help="validation policy for --dataset ingestion (default: strict)",
    )

    sub.add_parser("list", help="list experiments")

    all_cmd = sub.add_parser("all", help="run every experiment")
    all_cmd.add_argument("--out", type=Path, default=None)
    all_cmd.add_argument("--fast", action="store_true")
    all_cmd.add_argument("--jobs", type=int, default=None)
    all_cmd.add_argument("--no-cache", action="store_true")
    all_cmd.add_argument("--ledger", type=Path, default=None)
    all_cmd.add_argument("--dataset", type=Path, default=None)
    all_cmd.add_argument("--policy", choices=_POLICY_CHOICES, default="strict")

    cache_cmd = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_cmd.add_argument(
        "action",
        nargs="?",
        choices=("info", "clear", "doctor"),
        default="info",
        help="'info' (default) prints location/entry count; 'clear' empties "
        "it; 'doctor' scans for orphaned temp files and invalid entries",
    )
    cache_cmd.add_argument(
        "--fault-claims",
        type=Path,
        default=None,
        help="with 'doctor': also sweep fault-injection claim files whose "
        "owning process is dead (never run while a chaos harness is "
        "mid-cycle — live kill claims are its once-only bookkeeping)",
    )
    cache_cmd.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        help="with 'doctor': also sweep a service state directory for "
        "orphaned .tmp files from dead writers and delta sidecars whose "
        "base snapshot is gone",
    )

    advise = sub.add_parser(
        "advise", help="select the optimal strategy for observed stops"
    )
    advise.add_argument(
        "--stops",
        required=True,
        help="comma-separated stop lengths in seconds, or a path to a "
        "one-column file of stop lengths",
    )
    advise.add_argument(
        "--break-even",
        type=float,
        default=B_SSV,
        help=f"break-even interval B in seconds (default: {B_SSV:g} for SSV)",
    )
    advise.add_argument(
        "--improved",
        action="store_true",
        help="also consider the b-Rand family (the reproduction's "
        "correction to the paper's four-vertex optimum)",
    )
    advise.add_argument(
        "--trust",
        type=float,
        default=None,
        metavar="LAMBDA",
        help="also report the prediction-augmented (PSK) thresholds and "
        "consistency/robustness bounds at trust weight lambda in (0, 1]",
    )
    advise.add_argument(
        "--cvar-alpha",
        type=float,
        default=None,
        metavar="ALPHA",
        help="also report the CVaR-ALPHA tail-risk-constrained strategy "
        "(N-Rand/DET mixture honoring --cvar-cap)",
    )
    advise.add_argument(
        "--cvar-cap",
        type=float,
        default=2.0,
        metavar="TAU",
        help="tail-cost cap for --cvar-alpha, as a multiple of the "
        "offline optimum (default 2.0)",
    )
    advise.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="strict",
        help="validation policy for the stop input (default: strict)",
    )

    breakeven = sub.add_parser(
        "breakeven", help="derive B from the Appendix C cost model"
    )
    breakeven.add_argument(
        "--displacement", type=float, default=2.5, help="engine displacement (L)"
    )
    breakeven.add_argument(
        "--fuel-price", type=float, default=3.5, help="fuel price ($/gallon)"
    )
    breakeven.add_argument(
        "--conventional",
        action="store_true",
        help="conventional vehicle (vulnerable starter) instead of SSV",
    )
    breakeven.add_argument(
        "--measured-idle-cc-per-s",
        type=float,
        default=None,
        help="bench-measured idle fuel rate; overrides the Eq. 45 regression",
    )

    simulate = sub.add_parser(
        "simulate", help="learn and deploy a policy on one synthetic vehicle"
    )
    simulate.add_argument("--area", default="chicago", help="area name")
    simulate.add_argument("--days", type=int, default=14, help="total days to synthesize")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--conventional", action="store_true", help="use the B=47 cost model"
    )

    risk = sub.add_parser(
        "risk", help="mean/std cost report for observed stops"
    )
    risk.add_argument(
        "--stops", required=True,
        help="comma-separated stop lengths or a one-column file",
    )
    risk.add_argument("--break-even", type=float, default=B_SSV)
    risk.add_argument("--policy", choices=_POLICY_CHOICES, default="strict")

    data_cmd = sub.add_parser(
        "data", help="diagnose and repair data files (validation layer)"
    )
    data_cmd.add_argument(
        "action", choices=("doctor",), help="'doctor' runs every ingestion check"
    )
    data_cmd.add_argument(
        "path",
        type=Path,
        help="a fleet dataset directory, stop CSV, trace JSON, or any CSV "
        "(structural lint)",
    )
    data_cmd.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="repair",
        help="strict: stop at the first error; repair: drop bad records; "
        "quarantine: divert them to sidecar files (default: repair)",
    )
    data_cmd.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write the full validation report as JSON to this path",
    )
    data_cmd.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="write a JSONL run ledger including the validation events",
    )

    dataset = sub.add_parser(
        "dataset", help="generate and persist the synthetic evaluation dataset"
    )
    dataset.add_argument("out", type=Path, help="dataset directory to create")
    dataset.add_argument("--seed", type=int, default=None, help="dataset seed")
    dataset.add_argument(
        "--vehicles", type=int, default=None,
        help="vehicles per area (default: the paper's 217/312/653)",
    )

    serve = sub.add_parser(
        "serve", help="crash-safe online advisor over a stop-event stream"
    )
    serve.add_argument(
        "events",
        help="JSONL event stream: one {id, vehicle, t, stop} object per "
        "line; '-' reads stdin",
    )
    serve.add_argument(
        "--state-dir",
        type=Path,
        required=True,
        help="durable state root (WAL + snapshots per vehicle); restarting "
        "with the same directory recovers bit-identically",
    )
    serve.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="repair",
        help="validation policy for ingestion (default: repair — a service "
        "must survive one bad record; quarantine diverts them to a CSV "
        "sidecar in the state directory)",
    )
    serve.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="append advisor state transitions to this JSONL run ledger "
        "and print its summary",
    )
    serve.add_argument(
        "--break-even",
        type=float,
        default=B_SSV,
        help=f"break-even interval B in seconds (default: {B_SSV:g} for SSV)",
    )
    serve.add_argument(
        "--safe-strategy",
        choices=("nrand", "det"),
        default="nrand",
        help="distribution-free fallback in the SAFE state: nrand "
        "(expected CR e/(e-1)) or det (worst-case CR 2)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="compact the WAL into a snapshot every N applied events",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=4096,
        help="ingestion queue bound; beyond it events are shed and counted",
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=1,
        help="columnar ingest: apply N events per WAL group-commit chunk "
        "(default 1 = the per-event scalar loop; any N is bit-identical "
        "to it — see docs/serving.md)",
    )
    serve.add_argument(
        "--health",
        type=Path,
        default=None,
        help="also write the final health snapshot as JSON to this path",
    )
    serve.add_argument("--seed", type=int, default=None, help="RNG base seed")
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync WAL appends, snapshots and ledger events (durability "
        "against power loss, not just process death)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="sharded serving: consistent-hash-route vehicles across N "
        "worker processes, each owning one shard of --state-dir "
        "(see docs/serving.md 'Sharded serving')",
    )
    serve.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="sharded serving: declare a worker hung after this much "
        "silence while it holds in-flight work, SIGKILL and respawn it "
        "(0 disables hang detection; requires --shards)",
    )
    serve.add_argument(
        "--restart-budget",
        type=int,
        default=8,
        metavar="N",
        help="sharded serving: consecutive worker crashes before the "
        "shard's circuit breaker opens and its traffic is shed with "
        "count (requires --shards)",
    )
    serve.add_argument(
        "--poison-budget",
        type=int,
        default=3,
        metavar="N",
        help="sharded serving: consecutive crashes attributed to the "
        "same head-of-queue chunk before it is quarantined to "
        "poison.quarantine.jsonl and skipped (requires --shards)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="ADDR",
        help="also accept JSONL over a socket: unix:PATH, HOST:PORT or "
        ":PORT; GET /health on the same socket returns the fleet "
        "snapshot (requires --shards; pass events '-' with no piped "
        "stdin to serve socket-only)",
    )
    serve.add_argument(
        "--predictor",
        default="none",
        metavar="SPEC",
        help="learning-augmented advising: stop-length predictor feeding "
        "the PSK interpolation — none (default), contextual (hour-of-day "
        "running means learned from the stream itself), "
        "contextual:MIN:DECAY, or constant:VALUE (adversarial testing); "
        "see docs/serving.md 'Learning-augmented advising'",
    )
    serve.add_argument(
        "--trust",
        type=float,
        default=None,
        metavar="LAMBDA",
        help="pin the PSK trust weight lambda in (0, 1] (default: learn "
        "it online from the predictor's wrong-side rate; the per-stop "
        "robustness bound is 1 + 1/lambda either way)",
    )
    serve.add_argument(
        "--cvar-alpha",
        type=float,
        default=None,
        metavar="ALPHA",
        help="tail-risk control: constrain the per-stop CVaR over the "
        "worst ALPHA-fraction of threshold draws to --cvar-cap times "
        "the offline optimum (governs stops with no usable prediction)",
    )
    serve.add_argument(
        "--cvar-cap",
        type=float,
        default=2.0,
        metavar="TAU",
        help="tail-cost cap for --cvar-alpha, as a multiple of the "
        "offline optimum (default 2.0 — DET's unconditional worst case)",
    )

    ledger_cmd = sub.add_parser(
        "ledger", help="summarize a JSONL run ledger (torn-tail tolerant)"
    )
    ledger_cmd.add_argument("path", type=Path, help="ledger JSONL path")

    replicate_cmd = sub.add_parser(
        "replicate",
        help="ship WAL frames and snapshots from a primary state dir to "
        "a standby (local dir or a replica server over host:port / "
        "unix:PATH)",
    )
    replicate_cmd.add_argument(
        "primary",
        nargs="?",
        type=Path,
        default=None,
        help="primary state directory to ship from (omit with --serve)",
    )
    replicate_cmd.add_argument(
        "--standby",
        type=Path,
        default=None,
        help="standby state directory (local shipping target, or the "
        "apply target with --serve)",
    )
    replicate_cmd.add_argument(
        "--to",
        default=None,
        metavar="ADDR",
        help="remote standby address (host:port or unix:PATH) running "
        "'repro-idling replicate --serve'",
    )
    replicate_cmd.add_argument(
        "--serve",
        action="store_true",
        help="run the standby side: accept shipped frames on --listen "
        "and apply them to --standby",
    )
    replicate_cmd.add_argument(
        "--listen",
        default=None,
        metavar="ADDR",
        help="with --serve: bind address (host:port or unix:PATH)",
    )
    replicate_cmd.add_argument(
        "--interval",
        type=float,
        default=0.2,
        help="seconds between shipping passes (default: 0.2)",
    )
    replicate_cmd.add_argument(
        "--passes",
        type=int,
        default=None,
        metavar="N",
        help="stop after N shipping passes (default: run until killed; "
        "use --passes 1 for a one-shot catch-up)",
    )
    replicate_cmd.add_argument(
        "--max-errors",
        type=int,
        default=None,
        metavar="N",
        help="abort after N consecutive channel errors (default: retry "
        "forever)",
    )

    promote_cmd = sub.add_parser(
        "promote",
        help="promote a standby state dir to primary: fence the old "
        "primary's shard locks, recover every session bit-identically, "
        "and print the fleet digest",
    )
    promote_cmd.add_argument(
        "state_dir", type=Path, help="standby state directory to promote"
    )
    promote_cmd.add_argument(
        "--fence",
        type=Path,
        default=None,
        metavar="DIR",
        help="old primary's state directory: refuse promotion while a "
        "live process still owns a shard.lock there (split-brain guard)",
    )
    promote_cmd.add_argument(
        "--break-even",
        type=float,
        default=B_SSV,
        help=f"break-even interval B in seconds (default: {B_SSV:g}); "
        "must match the primary's configuration",
    )
    promote_cmd.add_argument(
        "--safe-strategy",
        choices=("nrand", "det"),
        default="nrand",
        help="SAFE-state fallback; must match the primary's configuration",
    )
    promote_cmd.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="WAL compaction cadence; must match the primary's "
        "configuration",
    )
    promote_cmd.add_argument(
        "--seed", type=int, default=None, help="RNG base seed (match primary)"
    )
    promote_cmd.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="repair",
        help="validation policy for the promoted service (default: repair)",
    )
    promote_cmd.add_argument(
        "--fsync",
        action="store_true",
        help="fsync durable writes on the promoted service",
    )

    backup_cmd = sub.add_parser(
        "backup",
        help="cold-copy a state dir's durable artifacts into an archive "
        "dir under a content-hash manifest",
    )
    backup_cmd.add_argument(
        "state_dir", type=Path, help="state directory to back up"
    )
    backup_cmd.add_argument(
        "archive_dir", type=Path, help="archive directory (must be fresh)"
    )

    restore_cmd = sub.add_parser(
        "restore",
        help="restore an archive into an empty state dir, verifying "
        "every file's hash first; --upto-seq rewinds to a point in time",
    )
    restore_cmd.add_argument(
        "archive_dir", type=Path, help="archive directory written by 'backup'"
    )
    restore_cmd.add_argument(
        "state_dir", type=Path, help="empty target state directory"
    )
    restore_cmd.add_argument(
        "--upto-seq",
        type=int,
        default=None,
        metavar="SEQ",
        help="point-in-time restore: truncate every session's history "
        "to WAL sequence <= SEQ (fails if compaction already consumed "
        "frames beyond SEQ)",
    )

    fleet_cmd = sub.add_parser(
        "fleet",
        help="fleet-wide durability checks across primary, standby and "
        "backup archive",
    )
    fleet_cmd.add_argument(
        "action",
        choices=("doctor",),
        help="'doctor' cross-checks WAL/snapshot integrity, replica "
        "watermarks and backup manifests; exits 1 on any problem",
    )
    fleet_cmd.add_argument(
        "state_dir", type=Path, help="primary state directory to verify"
    )
    fleet_cmd.add_argument(
        "--replica",
        type=Path,
        default=None,
        metavar="DIR",
        help="standby state directory: verify watermarks and digest "
        "agreement against the primary",
    )
    fleet_cmd.add_argument(
        "--archive",
        type=Path,
        default=None,
        metavar="DIR",
        help="backup archive: verify its manifest hashes",
    )
    fleet_cmd.add_argument(
        "--max-lag",
        type=int,
        default=None,
        metavar="N",
        help="with --replica: flag replication lag beyond N events as a "
        "problem, not just a report field",
    )
    fleet_cmd.add_argument(
        "--verify-restore",
        action="store_true",
        help="with --archive: byte-compare the state dir against the "
        "manifest (use after 'restore' to prove the round trip)",
    )
    return parser


#: Experiments that can evaluate an on-disk dataset via ``--dataset``.
_DATASET_EXPERIMENTS = {"fig3", "fig4", "table1"}


def _dataset_digest(directory: Path) -> str:
    """Content hash of a fleet dataset's payload files.

    Used to salt the result-cache key for ``--dataset`` runs: the same
    directory path with different bytes must not serve a stale cached
    result.  Quarantine sidecars and report files are deliberately
    excluded — a quarantine pass writes them next to the sources, and
    they must not invalidate the cache for the unchanged payload.
    """
    import hashlib

    directory = Path(directory)
    digest = hashlib.sha256()
    for name in ("manifest.json", "stops.csv"):
        file_path = directory / name
        digest.update(name.encode())
        if file_path.exists():
            digest.update(file_path.read_bytes())
    return digest.hexdigest()[:16]


def _experiment_params(experiment_id: str, args) -> dict:
    params: dict = {}
    if getattr(args, "fast", False):
        params.update(_FAST_PARAMS.get(experiment_id, {}))
    vehicles = getattr(args, "vehicles", None)
    if vehicles is not None and experiment_id in {"fig3", "fig4", "table1", "holdout", "seeds"}:
        params["vehicles_per_area"] = vehicles
    dataset = getattr(args, "dataset", None)
    if dataset is not None and experiment_id in _DATASET_EXPERIMENTS:
        params["dataset"] = str(dataset)
        params["policy"] = args.policy
        params["_dataset_digest"] = _dataset_digest(dataset)
    return params


def _parse_stops(spec: str, policy: str = "strict") -> np.ndarray:
    """Parse ``--stops`` (a file path or comma-separated values).

    Both forms run through the validation layer: under ``strict`` a bad
    value raises a typed error naming the offending line (or token),
    under ``repair``/``quarantine`` bad values are dropped and logged.
    """
    from .validation import PolicyEnforcer

    path = Path(spec)
    if path.exists():
        source = str(path)
        tokens = path.read_text().splitlines()
    else:
        source = "--stops"
        tokens = spec.split(",")
    enforcer = PolicyEnforcer(policy, None, source)
    values = []
    for line_number, token in enumerate(tokens, start=1):
        token = token.strip()
        if not token:
            continue
        enforcer.report.records_checked += 1
        try:
            value = float(token)
        except ValueError:
            enforcer.flag(
                "unparseable-duration",
                f"could not parse {token!r} as a stop length",
                line=line_number,
                record=[token],
            )
            continue
        if not np.isfinite(value):
            if not enforcer.flag(
                "non-finite-duration",
                f"stop length {token!r} is not finite",
                line=line_number,
                record=[token],
            ):
                continue
        elif value < 0.0:
            if not enforcer.flag(
                "negative-duration",
                f"stop length {value!r} is negative",
                line=line_number,
                record=[token],
            ):
                continue
        values.append(value)
    return np.asarray(values, dtype=float)


def _run_and_report(experiment_id: str, args, ledger: RunLedger | None = None) -> None:
    jobs = args.jobs if args.jobs is not None else get_default_jobs()
    params = _experiment_params(experiment_id, args)
    use_cache = not args.no_cache
    if ledger is not None:
        with use_ledger(ledger):
            result = cached_run(experiment_id, params, jobs=jobs, use_cache=use_cache)
    else:
        result = cached_run(experiment_id, params, jobs=jobs, use_cache=use_cache)
    print(result.to_ascii())
    if ledger is not None:
        print("\n-- ledger --")
        rows = list(ledger.summary().items())
        print(format_table(("event", "count"), rows))
        if ledger.path is not None:
            print(f"events written to {ledger.path}")
    if args.out is not None:
        paths = result.write_csvs(args.out)
        for path in paths:
            print(f"wrote {path}")


def _cache(args) -> None:
    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached file(s) from {cache.root}")
    elif args.action == "doctor":
        report = cache.doctor()
        print(f"cache directory: {cache.root}")
        print(f"entries:         {len(cache.entries())}")
        print(f"orphaned tmp:    {len(report['orphans'])}")
        print(f"invalid JSON:    {len(report['invalid'])}")
        for path in report["orphans"]:
            print(f"  orphan  {path}")
        for path in report["invalid"]:
            print(f"  invalid {path}")
        if not report["orphans"] and not report["invalid"]:
            print("cache is healthy")
        else:
            print("run 'repro-idling cache clear' to reclaim the space")
        if args.fault_claims is not None:
            from .engine.faults import sweep_stale_claims
            from .service.shard import sweep_stale_shard_locks

            removed = sweep_stale_claims(args.fault_claims)
            print(f"fault claims:    swept {len(removed)} stale claim(s) "
                  f"from {args.fault_claims}")
            for name in removed:
                print(f"  swept   {name}")
            # SIGKILLed shard workers leave shard.lock files the same
            # way crashed fault injectors leave claims; one doctor pass
            # sweeps both (live-pid locks are kept).
            locks = sweep_stale_shard_locks(args.fault_claims)
            print(f"shard locks:     swept {len(locks)} stale lock(s)")
            for name in locks:
                print(f"  swept   {name}")
        if args.state_dir is not None:
            from .service.replica import sweep_state_dir

            removed = sweep_state_dir(args.state_dir)
            print(f"state dir:       swept {len(removed)} orphan(s) "
                  f"from {args.state_dir}")
            for name in removed:
                print(f"  swept   {name}")
    else:
        entries = cache.entries()
        print(f"cache directory: {cache.root}")
        print(f"entries:         {len(entries)}")
        print(f"size:            {cache.size_bytes() / 1024:.1f} KiB")
        print(f"orphaned tmp:    {len(cache.orphan_tmp_files())}")


def _warn_break_even(break_even: float) -> None:
    """Unit-sanity warnings for ``--break-even`` (seconds expected)."""
    from .validation import break_even_findings

    for _check, message, severity in break_even_findings(break_even):
        if severity == "warning":
            print(f"warning: {message}", file=sys.stderr)


def _advise(args) -> None:
    _warn_break_even(args.break_even)
    stops = _parse_stops(args.stops, args.policy)
    stats = StopStatistics.from_samples(stops, args.break_even)
    selection = ConstrainedSkiRentalSolver(stats).select()
    print(f"stops observed:        {stops.size}")
    print(f"break-even interval B: {args.break_even:g} s")
    print(f"mu_B_minus:            {stats.mu_b_minus:.2f} s")
    print(f"q_B_plus:              {stats.q_b_plus:.3f}")
    print(f"selected strategy:     {selection.name}")
    if selection.name == "b-DET":
        print(f"  idle until b* =      {selection.chosen.parameters['b']:.1f} s, then shut off")
    elif selection.name == "DET":
        print(f"  idle until B =       {args.break_even:g} s, then shut off")
    elif selection.name == "TOI":
        print("  shut the engine off immediately at every stop")
    else:
        print("  draw the shutoff time from the N-Rand density (Eq. 7)")
    print(f"worst-case expected CR: {selection.worst_case_cr:.4f}")
    print("vertex comparison:")
    for vertex in selection.vertices:
        marker = "*" if vertex.name == selection.name else " "
        cr = f"{vertex.worst_case_cr:.4f}" if np.isfinite(vertex.worst_case_cr) else "inadmissible"
        print(f"  {marker} {vertex.name:<7} worst-case CR {cr}")
    if getattr(args, "improved", False):
        from .core import ImprovedConstrainedSolver

        improved = ImprovedConstrainedSolver(stats).select()
        print("\nwith the b-Rand correction (see EXPERIMENTS.md):")
        print(f"  corrected choice:     {improved.chosen_name}")
        if improved.chosen_name == "b-Rand":
            print(f"    randomize the shutoff over [0, {improved.b_rand_beta:.1f}] s "
                  "(truncated exponential density)")
        print(f"  corrected worst-case CR: {improved.worst_case_cr:.4f} "
              f"(improvement {improved.improvement_over_paper:+.4f})")
    if getattr(args, "trust", None) is not None:
        from .core.prediction import consistency_bound, robustness_bound

        lam = args.trust
        b = args.break_even
        print(f"\nprediction-augmented (PSK, lambda={lam:g}):")
        print(f"  long prediction (y_hat >= B): shut off at lambda*B = {lam * b:.1f} s")
        print(f"  short prediction:             idle until B/lambda  = {b / lam:.1f} s")
        print(f"  consistency bound (perfect predictions): {consistency_bound(lam):.4f}")
        print(f"  robustness bound (any predictions):      {robustness_bound(lam):.4f}")
    if getattr(args, "cvar_alpha", None) is not None:
        from .core.tailrisk import TailRiskRand

        tail = TailRiskRand(args.break_even, args.cvar_alpha, args.cvar_cap)
        print(f"\ntail-risk constrained (CVaR_{args.cvar_alpha:g} <= "
              f"{args.cvar_cap:g} x OPT):")
        print(f"  N-Rand weight rho*:      {tail.nrand_weight:.4f} "
              f"(atom at B: {tail.atom_weight:.4f})")
        print(f"  worst-case expected CR:  {tail.worst_case_expected_cr:.4f}")


def _breakeven(args) -> None:
    from .vehicle import (
        CONVENTIONAL_STARTER,
        SSV_STARTER,
        STOP_START_BATTERY,
        EngineSpec,
        VehicleCostModel,
    )

    engine = EngineSpec(
        displacement_liters=args.displacement,
        measured_idle_cc_per_s=args.measured_idle_cc_per_s,
    )
    model = VehicleCostModel(
        engine=engine,
        starter=CONVENTIONAL_STARTER if args.conventional else SSV_STARTER,
        battery=STOP_START_BATTERY,
        fuel_price_per_gallon=args.fuel_price,
    )
    breakdown = model.breakdown()
    kind = "conventional" if args.conventional else "stop-start"
    print(f"vehicle:                {kind}, {args.displacement:g} L engine")
    print(f"idle fuel rate:         {engine.idle_rate_cc_per_s():.3f} cc/s")
    print(f"idling cost:            {breakdown.idling_cost_cents_per_s:.4f} cents/s "
          f"(fuel at ${args.fuel_price:g}/gallon)")
    print("restart cost components (seconds of idling):")
    for component, seconds in breakdown.as_rows():
        print(f"  {component:<14} {seconds:8.2f}")
    print(f"break-even interval B:  {breakdown.total_seconds:.1f} s")


def _simulate(args) -> None:
    import numpy as np

    from .constants import B_CONVENTIONAL
    from .core import ProposedOnline, TurnOffImmediately
    from .fleet import area_config
    from .fleet.generator import FleetGenerator
    from .simulation import realized_cr, simulate_stops
    from .vehicle import conventional_cost_model, ssv_cost_model

    break_even = B_CONVENTIONAL if args.conventional else B_SSV
    model = conventional_cost_model() if args.conventional else ssv_cost_model()
    config = area_config(args.area)
    generator = FleetGenerator(config, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    vehicle = generator.generate_vehicle(0, rng)
    stops = vehicle.stop_lengths
    half = max(1, stops.size // 2)
    training, deployment = stops[:half], stops[half:]
    if deployment.size == 0:
        deployment = training
    policy = ProposedOnline.from_samples(training, break_even)
    print(f"area {config.name}: {stops.size} stops over {args.days} days "
          f"(training on {training.size}, deploying on {deployment.size})")
    print(f"policy: {policy.selected_name} "
          f"(guaranteed worst-case CR {policy.worst_case_cr:.3f}, B={break_even:g})")
    offline = simulate_stops(deployment, break_even=break_even)
    deployed = simulate_stops(deployment, strategy=policy, rng=rng)
    factory = simulate_stops(
        deployment, strategy=TurnOffImmediately(break_even), rng=rng
    )
    print(f"{'controller':<20}{'cost (idle-s)':>14}{'restarts':>10}"
          f"{'fuel (cc)':>11}{'cents':>9}{'CR':>8}")
    for name, result in (
        ("offline optimum", offline),
        ("proposed", deployed),
        ("factory TOI", factory),
    ):
        cr = realized_cr(result, offline)
        print(f"{name:<20}{result.total_cost_seconds:>14.0f}"
              f"{result.ledger.restarts:>10}{result.fuel_cc(model):>11.0f}"
              f"{result.cost_cents(model):>9.2f}{cr:>8.3f}")


def _risk(args) -> None:
    from .evaluation import vehicle_pareto_report

    _warn_break_even(args.break_even)
    stops = _parse_stops(args.stops, args.policy)
    points = vehicle_pareto_report(stops, args.break_even)
    print(f"weekly cost (idle-second units) over {stops.size} stops, "
          f"B = {args.break_even:g} s:")
    print(f"{'strategy':<10}{'mean':>10}{'std':>10}  pareto-efficient")
    for point in points:
        print(f"{point.strategy:<10}{point.mean:>10.1f}{point.std:>10.2f}  "
              f"{'yes' if point.efficient else 'no'}")


_STOPS_HEADER = "vehicle_id,start_time,duration"


def _lint_generic_csv(path: Path, report) -> None:
    """Structural lint for arbitrary CSVs (e.g. committed results).

    Deliberately value-agnostic: result tables legitimately contain
    strings like ``inf`` and ``infeasible``, so the only checks are
    byte-level decodability and a consistent column count.  Findings
    stay ``reported`` (nothing is dropped — the file is not ingested).
    """
    import csv
    import io

    from .validation import Issue

    report.add_source(str(path))
    raw = path.read_bytes()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        report.add(Issue("undecodable-bytes", f"not valid UTF-8: {exc}", str(path)))
        return
    rows = list(csv.reader(io.StringIO(text)))
    report.records_checked += len(rows)
    if not rows:
        report.add(Issue("empty-table", "no rows", str(path)))
        return
    width = len(rows[0])
    for line_number, row in enumerate(rows[1:], start=2):
        if row and len(row) != width:
            report.add(
                Issue(
                    "inconsistent-column-count",
                    f"row has {len(row)} column(s); header has {width}",
                    str(path),
                    line_number,
                )
            )
    print(f"generic CSV: {len(rows)} row(s), {width} column(s)")


def _data_doctor(args) -> int:
    """``data doctor``: run every ingestion check against a path.

    Exit status: 0 when the input is clean or every error was handled
    (dropped/quarantined/repaired under the policy); 1 when error-grade
    issues remain unhandled — a strict-mode raise (via the main()
    handler) or generic-lint findings, which are never repaired.
    """
    from .validation import ValidationReport, resolve_policy

    path = Path(args.path)
    policy = resolve_policy(args.policy)
    report = ValidationReport(policy.value)
    ledger = RunLedger(args.ledger) if args.ledger is not None else None

    def _examine() -> None:
        if path.is_dir():
            from .fleet import load_fleet_dataset

            fleets = load_fleet_dataset(path, policy=policy, report=report)
            total = sum(len(vehicles) for vehicles in fleets.values())
            print(f"fleet dataset: {total} vehicle(s) across {len(fleets)} area(s)")
        elif path.suffix == ".json":
            from .traces import read_traces_json

            traces = read_traces_json(path, policy=policy, report=report)
            print(f"trace JSON: {len(traces)} valid trace(s)")
        else:
            with open(path, newline="") as handle:
                first = handle.readline().strip()
            if first == _STOPS_HEADER:
                from .traces import read_stops_csv

                per_vehicle = read_stops_csv(path, policy=policy, report=report)
                stops = sum(values.size for values in per_vehicle.values())
                print(f"stop table: {len(per_vehicle)} vehicle(s), {stops} stop(s)")
            else:
                _lint_generic_csv(path, report)

    if ledger is not None:
        with use_ledger(ledger):
            _examine()
    else:
        _examine()
    print(report.format())
    if args.report is not None:
        written = report.write_json(args.report)
        print(f"report written to {written}")
    if ledger is not None and ledger.path is not None:
        print(f"ledger written to {ledger.path}")
    unhandled = [
        issue
        for issue in report.issues
        if issue.severity == "error" and issue.action in ("reported", "raised")
    ]
    if unhandled:
        print(f"{len(unhandled)} unhandled error(s)", file=sys.stderr)
        return 1
    return 0


def _serve(args) -> int:
    """``serve``: stream JSONL stop events through the advisor service."""
    import json

    from .service import AdvisorService
    from .service.session import SessionConfig

    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.listen is not None and args.shards is None:
        print("error: --listen requires --shards N", file=sys.stderr)
        return 2
    _warn_break_even(args.break_even)
    config_kwargs = dict(
        break_even=args.break_even,
        safe_strategy=args.safe_strategy,
        snapshot_every=args.snapshot_every,
    )
    if args.seed is not None:
        config_kwargs["seed"] = args.seed
    augmented = (
        args.predictor != "none"
        or args.trust is not None
        or args.cvar_alpha is not None
    )
    if augmented:
        from .service.augmented import AugmentedSessionConfig

        config_kwargs.update(
            predictor=args.predictor,
            trust=args.trust,
            cvar_alpha=args.cvar_alpha,
            cvar_cap=args.cvar_cap,
        )
        config = AugmentedSessionConfig(**config_kwargs)
    else:
        config = SessionConfig(**config_kwargs)
    if args.shards is not None:
        return _serve_sharded(args, config)
    ledger = (
        RunLedger(args.ledger, fsync=args.fsync, append=True)
        if args.ledger is not None
        else None
    )
    service = AdvisorService(
        args.state_dir,
        config,
        policy=args.policy,
        max_queue=args.max_queue,
        fsync=args.fsync,
    )

    def _pump(handle) -> None:
        if args.batch == 1:
            for line in handle:
                line = line.strip()
                if line:
                    service.ingest_line(line)
            return
        chunk: list[str] = []
        for line in handle:
            line = line.strip()
            if line:
                chunk.append(line)
                if len(chunk) >= args.batch:
                    service.ingest_lines(chunk)
                    chunk.clear()
        if chunk:
            service.ingest_lines(chunk)

    def _stream() -> None:
        # close() in finally: even a mid-stream failure (strict-policy
        # validation error, I/O error) must flush durable state and the
        # quarantine sidecar.
        try:
            if args.events == "-":
                _pump(sys.stdin)
            else:
                with open(args.events) as handle:
                    _pump(handle)
        finally:
            service.close()

    if ledger is not None:
        with use_ledger(ledger):
            _stream()
    else:
        _stream()

    snapshot = service.health_snapshot()
    ingest = snapshot["ingest"]
    print(f"fleet cost:  {snapshot['fleet_cost']:.1f} idle-s "
          f"over {len(snapshot['vehicles'])} vehicle(s)")
    print(f"ingestion:   {ingest['received']} received, "
          f"{ingest['duplicates']} duplicate(s), {ingest['rejected']} rejected, "
          f"{ingest['malformed']} malformed, {ingest['shed']} shed")
    if args.batch > 1:
        batch = ingest["batch"]
        print(f"batched:     {batch['chunks']} chunk(s) of <= {args.batch}, "
              f"{batch['events']} event(s), "
              f"{batch['events_per_s']:.0f} events/s")
    rows = [
        (
            info["vehicle"],
            info["health"],
            info["strategy"],
            str(info["applied"]),
            f"{info['total_cost']:.1f}",
            str(len(info["transitions"])),
        )
        for info in snapshot["vehicles"].values()
    ]
    print(format_table(
        ("vehicle", "health", "strategy", "applied", "cost", "transitions"), rows
    ))
    if args.health is not None:
        args.health.parent.mkdir(parents=True, exist_ok=True)
        args.health.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        print(f"health snapshot written to {args.health}")
    if ledger is not None and ledger.path is not None:
        print(f"ledger appended at {ledger.path}")
    return 0


def _serve_sharded(args, config) -> int:
    """``serve --shards N``: the consistent-hash multi-process fleet.

    Vehicles are routed across N worker processes (each owning one
    shard of ``--state-dir``); ``--listen`` additionally serves JSONL +
    ``GET /health`` over a socket through the asyncio front end.  The
    parent's ledger (``--ledger``) carries tier events (shard restarts,
    backpressure); each worker appends its advisor-state events to
    ``<ledger>.shard-NN``.
    """
    import json

    from .service.frontend import JsonlFrontend
    from .service.shard import ShardedAdvisorService

    ledger = (
        RunLedger(args.ledger, fsync=args.fsync, append=True)
        if args.ledger is not None
        else None
    )
    # Sub-batch routing granularity: workers always take the columnar
    # ingest path, so a --batch 1 default still ships useful chunks.
    chunk_size = args.batch if args.batch > 1 else 1024

    def _run() -> dict:
        service = ShardedAdvisorService(
            args.state_dir,
            config,
            shards=args.shards,
            policy=args.policy,
            fsync=args.fsync,
            max_queue=args.max_queue,
            ledger_path=None if args.ledger is None else str(args.ledger),
            hang_timeout=args.hang_timeout if args.hang_timeout > 0 else None,
            restart_budget=args.restart_budget,
            poison_budget=args.poison_budget,
        )
        try:
            if args.listen is not None:
                import asyncio

                frontend = JsonlFrontend(service, batch=chunk_size)
                stdin = None
                if args.events != "-":
                    stdin = open(args.events)
                elif not sys.stdin.isatty():
                    stdin = sys.stdin
                try:
                    asyncio.run(frontend.serve(args.listen, stdin=stdin))
                finally:
                    if stdin is not None and stdin is not sys.stdin:
                        stdin.close()
            else:
                def _pump(handle) -> None:
                    pending: list[str] = []
                    for line in handle:
                        line = line.strip()
                        if line:
                            pending.append(line)
                            if len(pending) >= chunk_size:
                                service.submit_lines(pending)
                                pending.clear()
                    if pending:
                        service.submit_lines(pending)

                if args.events == "-":
                    _pump(sys.stdin)
                else:
                    with open(args.events) as handle:
                        _pump(handle)
                service.drain()
            return service.health_snapshot(include_vehicles=True)
        finally:
            service.close()

    if ledger is not None:
        with use_ledger(ledger):
            snapshot = _run()
    else:
        snapshot = _run()

    ingest = snapshot["ingest"]
    routing = snapshot["routing"]
    print(f"fleet cost:  {snapshot['fleet_cost']:.1f} idle-s "
          f"over {len(snapshot['vehicles'])} vehicle(s)")
    print(f"ingestion:   {ingest['received']} received, "
          f"{ingest['duplicates']} duplicate(s), {ingest['rejected']} rejected, "
          f"{ingest['malformed']} malformed, {ingest['shed']} shed")
    print(f"sharded:     {routing['shards']} shard(s), "
          f"{routing['dispatched_events']} event(s) routed, "
          f"{routing['restarts']} worker restart(s), "
          f"{routing['shed_events']} shed at the tier")
    hangs = routing.get("hangs", 0)
    quarantined = routing.get("quarantined_chunks", 0)
    breakers = routing.get("breaker_open", [])
    if hangs or quarantined or breakers:
        print(f"supervision: {hangs} hang(s) detected, "
              f"{quarantined} chunk(s) quarantined "
              f"({routing.get('quarantined_events', 0)} event(s)), "
              f"breaker open on {breakers or 'no'} shard(s), "
              f"{routing.get('breaker_shed', 0)} event(s) shed to breakers")
    rows = [
        (
            str(row["shard"]),
            str(row["vehicles"]),
            f"{row['fleet_cost']:.1f}",
            str(row.get("events_acked", "-")),
            str(row.get("restarts", "-")),
        )
        for row in snapshot["shards"]
    ]
    print(format_table(("shard", "vehicles", "cost", "events", "restarts"), rows))
    if args.health is not None:
        args.health.parent.mkdir(parents=True, exist_ok=True)
        args.health.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        print(f"health snapshot written to {args.health}")
    if ledger is not None and ledger.path is not None:
        print(f"ledger appended at {ledger.path}")
    return 0


def _ledger_summary(args) -> int:
    """``ledger``: summarize a JSONL run ledger via the tolerant reader."""
    from collections import Counter

    from .engine import read_ledger

    records = read_ledger(args.path)
    print(f"{args.path}: {len(records)} record(s)")
    counts = Counter(str(record.get("event", "?")) for record in records)
    print(format_table(("event", "count"), sorted(counts.items())))
    transitions = [r for r in records if r.get("event") == "advisor-state"]
    if transitions:
        print("\nadvisor state transitions:")
        rows = [
            (
                str(record.get("vehicle", "?")),
                str(record.get("from", "?")),
                str(record.get("to", "?")),
                str(record.get("reason", "?")),
                str(record.get("applied", "?")),
            )
            for record in transitions
        ]
        print(format_table(("vehicle", "from", "to", "reason", "applied"), rows))
    return 0


def _dataset(args) -> None:
    from .fleet import DEFAULT_SEED, load_fleets, save_fleet_dataset, total_vehicle_count

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    fleets = load_fleets(seed=seed, vehicles_per_area=args.vehicles)
    path = save_fleet_dataset(args.out, fleets, seed=seed)
    total = total_vehicle_count(fleets)
    stops = sum(v.stop_lengths.size for vs in fleets.values() for v in vs)
    print(f"wrote {total} vehicles ({stops} stops) to {path}")
    print("load with repro.fleet.load_fleet_dataset(path)")


def _replicate(args) -> int:
    """``replicate``: ship WAL frames/snapshots, or run the standby side."""
    import asyncio

    from .service.replica import (
        LocalReplicaTarget,
        RemoteReplicaTarget,
        ReplicaServer,
        replicate,
    )

    if args.serve:
        if args.listen is None or args.standby is None:
            print("error: --serve requires --listen ADDR and --standby DIR",
                  file=sys.stderr)
            return 2
        server = ReplicaServer(args.standby)
        print(f"replica server applying to {args.standby} on {args.listen} "
              f"(Ctrl-C to stop)")
        try:
            asyncio.run(server.serve(args.listen, install_signals=True))
        except KeyboardInterrupt:
            pass
        return 0

    if args.primary is None:
        print("error: primary state dir required (or use --serve)",
              file=sys.stderr)
        return 2
    if (args.to is None) == (args.standby is None):
        print("error: pick exactly one shipping target: --standby DIR "
              "or --to ADDR", file=sys.stderr)
        return 2
    if args.to is not None:
        target = RemoteReplicaTarget(args.to)
        where = args.to
    else:
        target = LocalReplicaTarget(args.standby)
        where = str(args.standby)
    try:
        totals = replicate(
            args.primary,
            target,
            interval=args.interval,
            passes=args.passes,
            max_errors=args.max_errors,
        )
    except KeyboardInterrupt:
        print("replication stopped", file=sys.stderr)
        return 0
    finally:
        target.close()
    print(f"shipped to {where}: {totals['passes']} pass(es), "
          f"{totals['frames']} frame(s), {totals['snapshots']} snapshot(s), "
          f"{totals['deltas']} delta(s), {totals['registries']} registry "
          f"update(s), {totals['channel_errors']} channel error(s)")
    return 0


def _promotion_config(args):
    """Build the :class:`SessionConfig` a promoted standby must run with.

    Bit-identical continuation requires the exact configuration the
    primary ran — the flags mirror ``serve``'s.
    """
    from .service.session import SessionConfig

    _warn_break_even(args.break_even)
    kwargs = dict(
        break_even=args.break_even,
        safe_strategy=args.safe_strategy,
        snapshot_every=args.snapshot_every,
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return SessionConfig(**kwargs)


def _promote(args) -> int:
    """``promote``: fence the old primary and take over bit-identically."""
    from .service.replica import promote

    result = promote(
        args.state_dir,
        _promotion_config(args),
        fence=args.fence,
        policy=args.policy,
        fsync=args.fsync,
    )
    print(f"promoted {args.state_dir}: {len(result['vehicles'])} session(s) "
          f"across {len(result['roots'])} root(s)")
    print(f"fleet cost:  {result['fleet_cost']:.1f} idle-s")
    for vid in result["vehicles"]:
        print(f"  {vid}  {result['digests'][vid]}")
    return 0


def _backup(args) -> int:
    """``backup``: cold-copy durable state under a content manifest."""
    from .service.replica import backup

    manifest = backup(args.state_dir, args.archive_dir)
    print(f"backed up {len(manifest['files'])} file(s), "
          f"{len(manifest['vehicles'])} session(s) to {args.archive_dir}")
    for key in sorted(manifest["vehicles"]):
        info = manifest["vehicles"][key]
        print(f"  {key}  tip={info['tip']}  {info['digest'][:16]}")
    return 0


def _restore(args) -> int:
    """``restore``: verified restore, optionally to a point in time."""
    from .service.replica import restore

    report = restore(args.archive_dir, args.state_dir, upto_seq=args.upto_seq)
    print(f"restored {report['files']} file(s) to {args.state_dir}")
    if args.upto_seq is not None:
        dropped = sum(report["truncated"].values())
        print(f"point-in-time seq {args.upto_seq}: dropped {dropped} "
              f"frame(s) across {len(report['truncated'])} session(s)")
    print("run 'repro-idling fleet doctor' then 'promote' to bring it live")
    return 0


def _fleet(args) -> int:
    """``fleet doctor``: cross-check primary, standby and archive."""
    from .service.replica import fleet_doctor

    report = fleet_doctor(
        args.state_dir,
        replica_dir=args.replica,
        archive_dir=args.archive,
        max_lag=args.max_lag,
        verify_restore=args.verify_restore,
    )
    print(f"state dir:   {args.state_dir}")
    print(f"sessions:    {len(report['vehicles'])}")
    if report["replication"] is not None:
        repl = report["replication"]
        print(f"replication: max lag {repl['max_lag_events']} event(s), "
              f"{repl['vehicles_lagging']} session(s) lagging")
    if report["archive"] is not None:
        print(f"archive:     {args.archive} "
              f"({report['archive']['files']} file(s) verified)")
    for line in report["warnings"]:
        print(f"warning: {line}")
    for line in report["problems"]:
        print(f"problem: {line}")
    if report["ok"]:
        print("fleet is healthy")
        return 0
    print("fleet has problems — see above", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in sorted(EXPERIMENTS):
                print(experiment_id)
        elif args.command == "run":
            ledger = RunLedger(args.ledger) if args.ledger is not None else None
            _run_and_report(args.experiment, args, ledger)
        elif args.command == "all":
            # One ledger spans the whole batch (a single JSONL record of
            # the run), created before the first experiment starts.
            ledger = RunLedger(args.ledger) if args.ledger is not None else None
            for experiment_id in sorted(EXPERIMENTS):
                _run_and_report(experiment_id, args, ledger)
                print()
        elif args.command == "advise":
            _advise(args)
        elif args.command == "breakeven":
            _breakeven(args)
        elif args.command == "simulate":
            _simulate(args)
        elif args.command == "dataset":
            _dataset(args)
        elif args.command == "risk":
            _risk(args)
        elif args.command == "cache":
            _cache(args)
        elif args.command == "data":
            return _data_doctor(args)
        elif args.command == "serve":
            return _serve(args)
        elif args.command == "ledger":
            return _ledger_summary(args)
        elif args.command == "replicate":
            return _replicate(args)
        elif args.command == "promote":
            return _promote(args)
        elif args.command == "backup":
            return _backup(args)
        elif args.command == "restore":
            return _restore(args)
        elif args.command == "fleet":
            return _fleet(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as error:
        # ValueError covers json.JSONDecodeError from corrupt on-disk
        # artifacts (ledger, health snapshot) — a clean message, not a
        # traceback, when a file the service wrote earlier is damaged.
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
