"""Expected-cost and competitive-ratio evaluation.

This module connects strategies (:mod:`repro.core.strategy`) with
stop-length distributions (:mod:`repro.distributions`):

* exact expected online/offline costs under analytic, discrete and
  empirical distributions;
* the expected competitive ratio ``CR`` (Eq. 5) and the alternative
  ``CR'`` (Eq. 8, used by MOM-Rand's guarantee);
* Monte-Carlo estimators (used as cross-checks in the tests and by the
  event-level simulation layer);
* the *worst-case* expected cost of an arbitrary strategy over the
  ambiguity set ``Q(mu_B_minus, q_B_plus)``, solved as a small moment LP.

Evaluation conventions
----------------------
All expectations treat a randomized strategy's threshold as drawn
independently for every stop, matching the paper's per-stop decision
model.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate, optimize

from ..distributions.base import StopLengthDistribution
from ..distributions.discrete import DiscreteStopDistribution
from ..distributions.empirical import EmpiricalDistribution
from ..errors import DegenerateStatisticsError, InvalidParameterError, SolverError
from .costs import offline_cost_vec, online_cost_vec, validate_break_even
from .stats import StopStatistics
from .strategy import DeterministicThresholdStrategy, Strategy

__all__ = [
    "expected_offline_cost",
    "expected_online_cost",
    "expected_cr",
    "expected_cr_prime",
    "empirical_offline_cost",
    "empirical_online_cost",
    "empirical_cr",
    "monte_carlo_online_cost",
    "worst_case_expected_cost",
    "worst_case_cr",
    "worst_case_cr_prime",
]


def expected_offline_cost(
    distribution: StopLengthDistribution, break_even: float
) -> float:
    """``E[cost_offline]`` under a distribution: ``mu_B_minus + q_B_plus B``
    (Eqs. 2 and 13)."""
    b = validate_break_even(break_even)
    return distribution.partial_expectation(b) + distribution.survival(b) * b


def _atoms_of(distribution: StopLengthDistribution):
    """Return (values, probabilities) when the distribution is finitely
    supported, else None."""
    if isinstance(distribution, DiscreteStopDistribution):
        return distribution.values, distribution.probabilities
    if isinstance(distribution, EmpiricalDistribution):
        y = distribution.stop_lengths
        return y, np.full(y.size, 1.0 / y.size)
    return None


def expected_online_cost(
    strategy: Strategy,
    distribution: StopLengthDistribution,
    break_even: float | None = None,
) -> float:
    """Exact expected online cost ``J(P, q)`` (Eq. 15).

    Deterministic thresholds use the closed form
    ``∫₀ˣ y q(y) dy + (x + B) P{y >= x}``; randomized strategies integrate
    the per-stop expected cost against the distribution (exact sums for
    finitely-supported distributions, adaptive quadrature otherwise —
    the per-stop cost is constant beyond ``B`` so the tail contributes
    ``expected_cost(B) * P{y >= B}`` in closed form).
    """
    b = validate_break_even(break_even if break_even is not None else strategy.break_even)
    if abs(b - strategy.break_even) > 1e-12:
        raise InvalidParameterError(
            f"strategy was built for B={strategy.break_even}, evaluation requested B={b}"
        )
    if isinstance(strategy, DeterministicThresholdStrategy):
        x = strategy.threshold
        if math.isinf(x):  # NEV: always pay the full stop
            return distribution.mean()
        return distribution.partial_expectation(x) + distribution.survival(x) * (x + b)
    if isinstance(distribution, EmpiricalDistribution):
        # Closed forms on the cached prefix sums (one binary search per
        # threshold) instead of a per-value expected_cost_vec scan.
        from .kernels import strategy_cost

        return strategy_cost(distribution.prefix_sample, strategy)
    atoms = _atoms_of(distribution)
    if atoms is not None:
        values, probabilities = atoms
        return float((strategy.expected_cost_vec(values) * probabilities).sum())
    short_part, _ = integrate.quad(
        lambda y: strategy.expected_cost(y) * distribution.pdf(y), 0.0, b, limit=200
    )
    return short_part + strategy.expected_cost(b) * distribution.survival(b)


def expected_cr(
    strategy: Strategy,
    distribution: StopLengthDistribution,
    break_even: float | None = None,
) -> float:
    """Expected competitive ratio ``CR`` (Eq. 5): ratio of expected costs."""
    b = break_even if break_even is not None else strategy.break_even
    offline = expected_offline_cost(distribution, b)
    if offline <= 0.0:
        raise DegenerateStatisticsError(
            "expected offline cost is zero (all stops have zero length); CR undefined"
        )
    return expected_online_cost(strategy, distribution, b) / offline


def expected_cr_prime(
    strategy: Strategy,
    distribution: StopLengthDistribution,
    break_even: float | None = None,
) -> float:
    """The alternative metric ``CR'`` (Eq. 8):
    ``E_y[E_x[cost(x, y)] / cost_offline(y)]``.

    This is the metric MOM-Rand's ``1 + mu/(2B(e-2))`` bound refers to.
    Zero-length stops are excluded (their per-stop ratio is undefined).
    """
    b = validate_break_even(break_even if break_even is not None else strategy.break_even)
    atoms = _atoms_of(distribution)
    if atoms is not None:
        values, probabilities = atoms
        mask = values > 0.0
        if not np.any(mask):
            raise InvalidParameterError("all stops have zero length; CR' undefined")
        values, probabilities = values[mask], probabilities[mask]
        probabilities = probabilities / probabilities.sum()
        ratios = strategy.expected_cost_vec(values) / offline_cost_vec(values, b)
        return float((ratios * probabilities).sum())
    short_part, _ = integrate.quad(
        lambda y: strategy.expected_cost(y) / min(y, b) * distribution.pdf(y),
        0.0,
        b,
        limit=200,
    )
    return short_part + strategy.expected_cost(b) / b * distribution.survival(b)


def empirical_offline_cost(stop_lengths: np.ndarray, break_even: float) -> float:
    """Mean offline cost over an observed stop sample."""
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot evaluate costs on zero stops")
    return float(offline_cost_vec(y, break_even).mean())


def empirical_online_cost(strategy: Strategy, stop_lengths: np.ndarray) -> float:
    """Mean *expected* online cost over an observed stop sample.

    For randomized strategies this averages the exact per-stop expected
    cost (no sampling noise); use :func:`monte_carlo_online_cost` for the
    realized-draw estimate.
    """
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot evaluate costs on zero stops")
    return float(strategy.expected_cost_vec(y).mean())


def empirical_cr(
    strategy: Strategy, stop_lengths: np.ndarray, break_even: float | None = None
) -> float:
    """Per-vehicle CR on observed stops (the Figure 4 quantity):
    mean expected online cost / mean offline cost."""
    b = break_even if break_even is not None else strategy.break_even
    offline = empirical_offline_cost(stop_lengths, b)
    if offline <= 0.0:
        raise DegenerateStatisticsError("offline cost is zero over the sample; CR undefined")
    return empirical_online_cost(strategy, stop_lengths) / offline


def monte_carlo_online_cost(
    strategy: Strategy,
    stop_lengths: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """Realized mean online cost with one independent threshold draw per
    stop — the event-level quantity an actual stop-start controller pays."""
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot evaluate costs on zero stops")
    thresholds = strategy.draw_thresholds(y.size, rng)
    finite = np.isfinite(thresholds)
    costs = np.empty(y.size, dtype=float)
    costs[finite] = online_cost_vec(thresholds[finite], y[finite], strategy.break_even)
    costs[~finite] = y[~finite]  # NEV: infinite threshold, cost is the stop itself
    return float(costs.mean())


def worst_case_expected_cost(
    strategy: Strategy,
    stats: StopStatistics,
    grid_size: int = 512,
) -> float:
    """Worst-case expected cost of an arbitrary strategy over the
    ambiguity set ``Q(mu_B_minus, q_B_plus)``.

    The adversary maximizes ``∫ h(y) q(y) dy`` where
    ``h(y) = E_x[cost(x, y)]``, subject to the two moment constraints.
    ``h`` is constant for ``y >= B`` (strategies never idle past ``B``),
    so long-stop mass contributes ``q_B_plus * h(B)`` and the short-stop
    part is a finite moment LP on a grid over ``[0, B)``:

    .. math::

        \\max_p \\sum_i p_i h(y_i)
        \\quad \\text{s.t.} \\sum_i p_i = 1 - q^+,\\;
        \\sum_i p_i y_i = \\mu^-,\\; p \\ge 0.

    NEV is special-cased: its cost is unbounded over Q whenever
    ``q_B_plus > 0`` (long stops can be arbitrarily long).
    """
    if isinstance(strategy, DeterministicThresholdStrategy) and math.isinf(
        strategy.threshold
    ):
        return math.inf if stats.q_b_plus > 0.0 else stats.mu_b_minus
    if grid_size < 3:
        raise InvalidParameterError(f"grid_size must be >= 3, got {grid_size}")
    b = stats.break_even
    # Exclude y = B itself (grid covers short stops only; B-mass is long).
    grid = np.linspace(0.0, b, grid_size, endpoint=False)
    h = strategy.expected_cost_vec(grid)
    short_mass = 1.0 - stats.q_b_plus
    long_part = stats.q_b_plus * strategy.expected_cost(b)
    if short_mass <= 1e-15:
        return long_part
    result = optimize.linprog(
        c=-h,  # maximize
        A_eq=np.vstack([np.ones_like(grid), grid]),
        b_eq=np.array([short_mass, stats.mu_b_minus]),
        bounds=[(0.0, None)] * grid.size,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"moment LP failed: {result.message}")
    return float(-result.fun + long_part)


def worst_case_cr(
    strategy: Strategy,
    stats: StopStatistics,
    grid_size: int = 512,
) -> float:
    """Worst-case expected CR over Q: worst-case cost over the constant
    expected offline cost ``mu_B_minus + q_B_plus B``."""
    offline = stats.expected_offline_cost
    if offline <= 0.0:
        raise DegenerateStatisticsError("expected offline cost is zero; CR undefined")
    return worst_case_expected_cost(strategy, stats, grid_size) / offline


def worst_case_cr_prime(
    strategy: Strategy,
    stats: StopStatistics,
    grid_size: int = 512,
) -> float:
    """Worst-case CR' (Eq. 8's per-stop-ratio metric) over Q.

    ``CR' = E_y[h(y) / cost_offline(y)]`` is linear in q, so the same
    moment-LP machinery applies with payoff ``h(y)/min(y, B)`` per grid
    point.  Zero-length stops are excluded from the adversary's grid
    (their per-stop ratio is undefined); long stops contribute the
    constant ``h(B)/B``.  NEV's CR' is unbounded whenever long stops
    exist (matching its unbounded CR).
    """
    if isinstance(strategy, DeterministicThresholdStrategy) and math.isinf(
        strategy.threshold
    ):
        return math.inf if stats.q_b_plus > 0.0 else 1.0
    if grid_size < 3:
        raise InvalidParameterError(f"grid_size must be >= 3, got {grid_size}")
    b = stats.break_even
    grid = np.linspace(0.0, b, grid_size, endpoint=False)[1:]  # exclude y = 0
    ratios = strategy.expected_cost_vec(grid) / grid
    short_mass = 1.0 - stats.q_b_plus
    long_part = stats.q_b_plus * strategy.expected_cost(b) / b
    if short_mass <= 1e-15:
        return long_part
    result = optimize.linprog(
        c=-ratios,
        A_eq=np.vstack([np.ones_like(grid), grid]),
        b_eq=np.array([short_mass, stats.mu_b_minus]),
        bounds=[(0.0, None)] * grid.size,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"CR' moment LP failed: {result.message}")
    return float(-result.fun + long_part)
