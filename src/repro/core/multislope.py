"""Multislope ski rental: more than one engine-off depth.

The paper's related work [14] (Lotker, Patt-Shamir, Rawitz) generalizes
ski rental to *multislope* instances — "rent, lease, or buy".  The
automotive reading: a stopped vehicle can be in one of several states of
decreasing idle burn and increasing re-activation cost, e.g.

* state 0 — engine idling (rate 1, no switch cost);
* state 1 — engine off, accessories on battery (reduced rate: battery
  wear while parked hot, alternator recharge debt);
* state 2 — deep off (rate ~0, full restart cost).

A state ``i`` is a pair ``(switch_cost_i, rate_i)`` with switch costs
increasing and rates strictly decreasing; the classic problem is the
two-state instance ``[(0, 1), (B, 0)]``.

Implemented here:

* :class:`MultislopeProblem` — validation, the offline lower envelope
  ``OPT(y) = min_i (c_i + r_i y)`` and its transition points;
* :class:`FollowTheEnvelope` — the deterministic online policy that at
  elapsed stop time ``t`` occupies the state the offline optimum would
  occupy for a stop of exactly length ``t``.  Its cost is
  ``OPT(t) + c_{state(t)} <= 2 OPT(t)`` — the standard 2-competitive
  argument, verified exactly by the tests (and specializing to DET on
  the two-state instance).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["Slope", "MultislopeProblem", "FollowTheEnvelope"]


@dataclass(frozen=True)
class Slope:
    """One engine state: a one-time entry cost and an idle-cost rate."""

    switch_cost: float
    rate: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.switch_cost) or self.switch_cost < 0.0:
            raise InvalidParameterError(
                f"switch_cost must be >= 0, got {self.switch_cost!r}"
            )
        if not np.isfinite(self.rate) or self.rate < 0.0:
            raise InvalidParameterError(f"rate must be >= 0, got {self.rate!r}")

    def cost(self, duration: float) -> float:
        """Total cost of sitting in this state for ``duration`` seconds
        (including the entry cost)."""
        return self.switch_cost + self.rate * duration


class MultislopeProblem:
    """A validated multislope instance.

    Slopes must be ordered by strictly increasing switch cost and
    strictly decreasing rate (any slope violating this is dominated and
    rejected rather than silently dropped), with slope 0 free to enter
    (``switch_cost == 0``) — the state the vehicle is already in.
    """

    def __init__(self, slopes) -> None:
        slopes = [s if isinstance(s, Slope) else Slope(*s) for s in slopes]
        if len(slopes) < 2:
            raise InvalidParameterError("a multislope instance needs >= 2 states")
        if slopes[0].switch_cost != 0.0:
            raise InvalidParameterError("state 0 must have zero switch cost")
        for earlier, later in zip(slopes, slopes[1:]):
            if later.switch_cost <= earlier.switch_cost:
                raise InvalidParameterError(
                    "switch costs must be strictly increasing "
                    f"({later.switch_cost} after {earlier.switch_cost})"
                )
            if later.rate >= earlier.rate:
                raise InvalidParameterError(
                    f"rates must be strictly decreasing ({later.rate} after {earlier.rate})"
                )
        self.slopes = tuple(slopes)
        self._transitions = self._compute_transitions()

    @classmethod
    def classic(cls, break_even: float) -> "MultislopeProblem":
        """The two-state instance equivalent to the paper's problem."""
        return cls([Slope(0.0, 1.0), Slope(float(break_even), 0.0)])

    @classmethod
    def automotive_three_state(
        cls,
        accessory_rate: float = 0.25,
        accessory_cost: float = 12.0,
        full_off_cost: float = 28.0,
    ) -> "MultislopeProblem":
        """Engine idling / accessory-only / deep off, in idle-second
        units (defaults loosely derived from the Appendix C components:
        the accessory state avoids the fuel burn but still pays battery
        drain, the deep-off state pays the full restart)."""
        return cls(
            [
                Slope(0.0, 1.0),
                Slope(accessory_cost, accessory_rate),
                Slope(full_off_cost, 0.0),
            ]
        )

    def _compute_transitions(self) -> list[float]:
        """Stop lengths at which the offline optimum changes state.

        Transition between consecutive envelope states i and i+1 is where
        ``c_i + r_i y = c_{i+1} + r_{i+1} y``.  With costs increasing and
        rates decreasing, consecutive crossings are increasing whenever
        every slope appears on the envelope; slopes that never win are
        tolerated (their crossing is absorbed by a later one).
        """
        transitions = []
        current = 0
        while current < len(self.slopes) - 1:
            best_next, best_y = None, np.inf
            for candidate in range(current + 1, len(self.slopes)):
                numerator = (
                    self.slopes[candidate].switch_cost - self.slopes[current].switch_cost
                )
                denominator = self.slopes[current].rate - self.slopes[candidate].rate
                crossing = numerator / denominator
                if crossing < best_y - 1e-15:
                    best_next, best_y = candidate, crossing
            transitions.append(best_y)
            current = best_next
        return transitions

    @property
    def transition_points(self) -> tuple[float, ...]:
        """Stop lengths at which the offline envelope switches state."""
        return tuple(self._transitions)

    def envelope_state(self, stop_length: float) -> int:
        """Index of the slope the offline optimum uses for ``stop_length``
        (ties resolved toward the deeper state, matching the paper's
        ``y >= B`` convention)."""
        if stop_length < 0.0:
            raise InvalidParameterError(f"stop length must be >= 0, got {stop_length!r}")
        position = bisect.bisect_right(self._transitions, stop_length)
        # Transitions were built along the envelope path; map position to
        # the actual slope index along that path.
        state = 0
        remaining = position
        current = 0
        while remaining > 0:
            current = self._next_envelope_state(current)
            state = current
            remaining -= 1
        return state

    def _next_envelope_state(self, current: int) -> int:
        best_next, best_y = current, np.inf
        for candidate in range(current + 1, len(self.slopes)):
            numerator = self.slopes[candidate].switch_cost - self.slopes[current].switch_cost
            denominator = self.slopes[current].rate - self.slopes[candidate].rate
            crossing = numerator / denominator
            if crossing < best_y - 1e-15:
                best_next, best_y = candidate, crossing
        return best_next

    def offline_cost(self, stop_length: float) -> float:
        """``OPT(y) = min_i (c_i + r_i y)``."""
        if stop_length < 0.0:
            raise InvalidParameterError(f"stop length must be >= 0, got {stop_length!r}")
        return min(slope.cost(stop_length) for slope in self.slopes)


class FollowTheEnvelope:
    """Deterministic online policy: occupy the offline-optimal state for
    a stop of the elapsed length.

    At elapsed time ``t`` the policy has paid the envelope's running
    integral (``= OPT(t)``, since the envelope's derivative is the active
    rate) plus the switch costs of every state entered (``= c_{state(t)}
    <= OPT(t)``), hence it is 2-competitive; on the classic two-state
    instance it is exactly DET.
    """

    def __init__(self, problem: MultislopeProblem) -> None:
        self.problem = problem

    def online_cost(self, stop_length: float) -> float:
        """Total cost of handling one stop of the given length."""
        if stop_length < 0.0:
            raise InvalidParameterError(f"stop length must be >= 0, got {stop_length!r}")
        final_state = self.problem.envelope_state(stop_length)
        # Idle part: integral of the envelope rate = OPT(stop_length)
        # minus the switch costs embedded in OPT's current affine piece...
        # computed directly instead: walk the envelope segments.
        cost = 0.0
        previous_boundary = 0.0
        state = 0
        for boundary in self.problem.transition_points:
            if boundary > stop_length:
                break
            # A stop ending exactly at a boundary still pays the switch
            # (the y >= x convention of Eq. 3 generalized).
            cost += self.problem.slopes[state].rate * (boundary - previous_boundary)
            next_state = self.problem._next_envelope_state(state)
            # Switch costs are cumulative-from-state-0; pay the increment.
            cost += (
                self.problem.slopes[next_state].switch_cost
                - self.problem.slopes[state].switch_cost
            )
            state = next_state
            previous_boundary = boundary
        if stop_length > previous_boundary:
            cost += self.problem.slopes[state].rate * (stop_length - previous_boundary)
        # Consistency: the walk must end in the envelope state.
        assert state == final_state, (state, final_state)
        return cost

    def competitive_ratio(self, stop_length: float) -> float:
        """Per-stop ratio against the offline envelope (<= 2)."""
        offline = self.problem.offline_cost(stop_length)
        if offline == 0.0:
            return 1.0
        return self.online_cost(stop_length) / offline
