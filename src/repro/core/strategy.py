"""Strategy abstractions for the ski-rental idling problem.

A *strategy* chooses the idling threshold ``x``: the engine idles until
``x`` seconds into the stop and is then shut off (paying the restart cost
``B`` when the stop outlasts the threshold).  Strategies come in three
flavours, mirroring the generic solution form of Eq. (18):

* :class:`DeterministicThresholdStrategy` — a single atom at a fixed ``x``
  (NEV, TOI, DET and b-DET are all instances);
* :class:`ContinuousRandomizedStrategy` — a continuous pdf on ``[0, B]``
  (N-Rand and MOM-Rand);
* :class:`MixedStrategy` — atoms plus a continuous component, the full
  ``P(x) = p(x) + α δ(x-ε) + β δ(x-B) + γ δ(x-b)`` form used in Section 4.

Every strategy exposes

``draw_threshold(rng)``
    sample an idling threshold (the *online decision* for one stop);
``expected_cost(y)``
    the per-stop expected online cost ``E_x[cost_online(x, y)]`` — exact,
    via closed forms where subclasses provide them;
``expected_cost_vec(ys)``
    the vectorised version used by the fleet evaluation layer.

The per-stop expected cost follows directly from Eq. (3):

.. math::

    E_x[cost(x, y)] = \\int_{x \\le y} (x + B)\\,dP(x) + y\\,P\\{x > y\\}

(thresholds no larger than the stop length pay ``x + B``; larger thresholds
mean the engine was still idling when the vehicle moved off, cost ``y``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
from scipy import integrate, optimize

from ..errors import InvalidParameterError
from .costs import validate_break_even, validate_stop_length

__all__ = [
    "Strategy",
    "DeterministicThresholdStrategy",
    "ContinuousRandomizedStrategy",
    "MixedStrategy",
    "Atom",
]


class Strategy(ABC):
    """Abstract online strategy for a given break-even interval ``B``."""

    #: Short display name (e.g. ``"DET"``, ``"N-Rand"``); subclasses set it.
    name: str = "strategy"

    def __init__(self, break_even: float) -> None:
        self.break_even = validate_break_even(break_even)

    @abstractmethod
    def draw_threshold(self, rng: np.random.Generator) -> float:
        """Sample one idling threshold ``x`` (the online decision)."""

    @abstractmethod
    def expected_cost(self, stop_length: float) -> float:
        """Exact per-stop expected online cost ``E_x[cost_online(x, y)]``."""

    def expected_cost_squared(self, stop_length: float) -> float:
        """``E_x[cost_online(x, y)^2]`` — second moment of the per-stop
        cost over the strategy's randomization.  Deterministic strategies
        override trivially; the base implementation raises."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement expected_cost_squared"
        )

    def cost_variance(self, stop_length: float) -> float:
        """Per-stop cost variance ``Var_x[cost_online(x, y)]``.

        Zero for deterministic strategies: one practical argument for
        the deterministic vertices — same expected cost, no week-to-week
        lottery."""
        mean = self.expected_cost(stop_length)
        return max(0.0, self.expected_cost_squared(stop_length) - mean * mean)

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`expected_cost`.

        The base implementation loops; subclasses with closed forms
        override it with numpy expressions.
        """
        y = np.asarray(stop_lengths, dtype=float)
        return np.array([self.expected_cost(v) for v in y.ravel()]).reshape(y.shape)

    def draw_thresholds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` independent thresholds (one per stop).

        The base implementation loops :meth:`draw_threshold`; subclasses
        with rng-native or batched inverse-CDF sampling override it.  The
        overrides consume the generator exactly like ``count`` scalar
        draws (``rng.uniform(size=count)`` produces the same uniforms),
        so the stream stays seed-compatible; the transformed values agree
        with the scalar path to within 1 ulp (numpy vs libm rounding).
        """
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return np.array([self.draw_threshold(rng) for _ in range(count)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, B={self.break_even})"


class DeterministicThresholdStrategy(Strategy):
    """Always idle until a fixed threshold ``x`` (possibly 0 or infinite).

    ``threshold = 0`` is TOI (turn off immediately), ``threshold = B`` is
    DET, ``threshold = b < B`` is b-DET, and ``threshold = inf`` is NEV
    (never turn the engine off).
    """

    name = "fixed-threshold"

    def __init__(self, break_even: float, threshold: float) -> None:
        super().__init__(break_even)
        x = float(threshold)
        if math.isnan(x) or x < 0.0:
            raise InvalidParameterError(
                f"threshold must be >= 0 (inf allowed for NEV), got {threshold!r}"
            )
        self.threshold = x

    def draw_threshold(self, rng: np.random.Generator) -> float:
        return self.threshold

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        if y < self.threshold:
            return y
        return self.threshold + self.break_even

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        y = np.asarray(stop_lengths, dtype=float)
        return np.where(y < self.threshold, y, self.threshold + self.break_even)

    def expected_cost_squared(self, stop_length: float) -> float:
        cost = self.expected_cost(stop_length)
        return cost * cost

    def draw_thresholds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return np.full(count, self.threshold)


class ContinuousRandomizedStrategy(Strategy):
    """A strategy whose threshold is drawn from a continuous pdf on
    ``[support_lo, support_hi]`` (``[0, B]`` for every strategy in the
    paper; Appendix A proves mass above ``B`` is never useful).

    Subclasses must implement :meth:`pdf`.  Closed-form :meth:`cdf`,
    :meth:`partial_cost_integral` and :meth:`expected_cost` overrides make
    the evaluation exact and fast; the defaults fall back on adaptive
    quadrature (:func:`scipy.integrate.quad`) and inverse-CDF sampling via
    Brent root finding, so a subclass providing only ``pdf`` is fully
    functional.
    """

    name = "randomized"

    support_lo: float = 0.0

    #: Node count of the cached Gauss–Legendre rule behind the vectorised
    #: quadrature fallbacks.  High enough that the smooth densities of the
    #: strategy layer integrate well below the 1e-9 kernel agreement
    #: tolerance enforced by ``tests/test_kernels.py``.
    quadrature_order: int = 96

    def __init__(self, break_even: float) -> None:
        super().__init__(break_even)
        self.support_hi = self.break_even

    @abstractmethod
    def pdf(self, threshold: float) -> float:
        """Probability density of drawing ``threshold``."""

    def pdf_vec(self, thresholds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`pdf`; the base implementation loops,
        closed-form subclasses override with numpy expressions."""
        x = np.asarray(thresholds, dtype=float)
        return np.array([self.pdf(v) for v in x.ravel()]).reshape(x.shape)

    def cdf(self, threshold: float) -> float:
        """``P{x <= threshold}``; default integrates the pdf numerically."""
        t = float(threshold)
        if t <= self.support_lo:
            return 0.0
        if t >= self.support_hi:
            return 1.0
        value, _ = integrate.quad(self.pdf, self.support_lo, t)
        return min(1.0, max(0.0, value))

    def partial_cost_integral(self, stop_length: float) -> float:
        """``∫_{support_lo}^{y} (x + B) pdf(x) dx`` — the restart branch of
        the expected-cost integral; default uses quadrature."""
        y = min(float(stop_length), self.support_hi)
        if y <= self.support_lo:
            return 0.0
        value, _ = integrate.quad(
            lambda x: (x + self.break_even) * self.pdf(x), self.support_lo, y
        )
        return value

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        return self.partial_cost_integral(y) + y * (1.0 - self.cdf(y))

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        """Vectorised expected cost via a cached fixed-node Gauss–Legendre
        rule: one :meth:`pdf_vec` call on a (unique stop) × (node) grid
        replaces per-element adaptive ``integrate.quad``.  Subclasses with
        closed forms still override this entirely."""
        from .kernels import gauss_legendre_rule  # deferred; kernels imports us

        y = np.asarray(stop_lengths, dtype=float)
        if y.size == 0:
            return np.zeros_like(y)
        if np.any(~np.isfinite(y)) or np.any(y < 0.0):
            raise InvalidParameterError(
                "stop lengths must be non-negative finite numbers"
            )
        nodes, weights = gauss_legendre_rule(self.quadrature_order)
        lo, hi = self.support_lo, self.support_hi
        unique, inverse = np.unique(y.ravel(), return_inverse=True)
        span = np.clip(unique, lo, hi) - lo
        grid = lo + span[:, None] * nodes[None, :]
        scaled = span[:, None] * weights[None, :]
        density = self.pdf_vec(grid)
        restart = ((grid + self.break_even) * density * scaled).sum(axis=1)
        mass_below = (density * scaled).sum(axis=1)
        survive = np.where(
            unique >= hi, 0.0, unique * np.maximum(0.0, 1.0 - mass_below)
        )
        return (restart + survive)[inverse].reshape(y.shape)

    def expected_cost_squared(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        upper = min(y, self.support_hi)
        restart_part = 0.0
        if upper > self.support_lo:
            restart_part, _ = integrate.quad(
                lambda x: (x + self.break_even) ** 2 * self.pdf(x),
                self.support_lo,
                upper,
            )
        return restart_part + y * y * (1.0 - self.cdf(y))

    def draw_threshold(self, rng: np.random.Generator) -> float:
        u = rng.uniform()
        return self.inverse_cdf(u)

    def inverse_cdf(self, quantile: float) -> float:
        """Quantile function; default inverts :meth:`cdf` with Brent."""
        u = float(quantile)
        if not 0.0 <= u <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {quantile!r}")
        if u <= 0.0:
            return self.support_lo
        if u >= 1.0:
            return self.support_hi
        return float(
            optimize.brentq(
                lambda x: self.cdf(x) - u, self.support_lo, self.support_hi, xtol=1e-12
            )
        )

    def inverse_cdf_vec(self, quantiles: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`inverse_cdf`; base implementation loops the
        Brent inversion, closed-form subclasses override."""
        u = np.asarray(quantiles, dtype=float)
        return np.array([self.inverse_cdf(q) for q in u.ravel()]).reshape(u.shape)

    def draw_thresholds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Batched inverse-CDF sampling: one ``rng.uniform(size=count)``
        call consuming the generator exactly like ``count`` scalar
        :meth:`draw_threshold` calls (values agree to 1 ulp)."""
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return self.inverse_cdf_vec(rng.uniform(size=count))

    def mean_threshold(self) -> float:
        """Expected threshold ``E[x]``; default uses quadrature."""
        value, _ = integrate.quad(
            lambda x: x * self.pdf(x), self.support_lo, self.support_hi
        )
        return value


class Atom:
    """A point mass of the mixed strategy: probability ``mass`` of choosing
    exactly ``location`` as the idling threshold."""

    __slots__ = ("location", "mass")

    def __init__(self, location: float, mass: float) -> None:
        loc = float(location)
        m = float(mass)
        if math.isnan(loc) or loc < 0.0:
            raise InvalidParameterError(f"atom location must be >= 0, got {location!r}")
        if not 0.0 <= m <= 1.0:
            raise InvalidParameterError(f"atom mass must lie in [0, 1], got {mass!r}")
        self.location = loc
        self.mass = m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom(location={self.location}, mass={self.mass})"


class MixedStrategy(Strategy):
    """The generic solution form of Eq. (18): discrete atoms plus an
    optional continuous component.

    Parameters
    ----------
    break_even:
        The break-even interval ``B``.
    atoms:
        Point masses ``[Atom(location, mass), ...]``; total atom mass must
        not exceed 1.
    continuous:
        Optional :class:`ContinuousRandomizedStrategy` carrying the
        remaining probability ``1 - sum(atom masses)``.  Required whenever
        the atom masses do not sum to 1.
    """

    name = "mixed"

    def __init__(
        self,
        break_even: float,
        atoms: Sequence[Atom],
        continuous: ContinuousRandomizedStrategy | None = None,
    ) -> None:
        super().__init__(break_even)
        self.atoms = list(atoms)
        total_mass = sum(a.mass for a in self.atoms)
        if total_mass > 1.0 + 1e-12:
            raise InvalidParameterError(
                f"atom masses sum to {total_mass} > 1; not a probability distribution"
            )
        self.continuous_weight = max(0.0, 1.0 - total_mass)
        if self.continuous_weight > 1e-12 and continuous is None:
            raise InvalidParameterError(
                "atom masses sum to less than 1 but no continuous component given"
            )
        if continuous is not None and abs(continuous.break_even - self.break_even) > 1e-12:
            raise InvalidParameterError(
                "continuous component must share the strategy's break-even interval"
            )
        self.continuous = continuous

    def draw_threshold(self, rng: np.random.Generator) -> float:
        u = rng.uniform()
        acc = 0.0
        for atom in self.atoms:
            acc += atom.mass
            if u < acc:
                return atom.location
        if self.continuous is None:  # numerical corner: masses summed to ~1
            return self.atoms[-1].location
        return self.continuous.draw_threshold(rng)

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        cost = 0.0
        for atom in self.atoms:
            per_atom = y if y < atom.location else atom.location + self.break_even
            cost += atom.mass * per_atom
        if self.continuous is not None and self.continuous_weight > 0.0:
            cost += self.continuous_weight * self.continuous.expected_cost(y)
        return cost

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        y = np.asarray(stop_lengths, dtype=float)
        cost = np.zeros_like(y)
        for atom in self.atoms:
            cost += atom.mass * np.where(
                y < atom.location, y, atom.location + self.break_even
            )
        if self.continuous is not None and self.continuous_weight > 0.0:
            cost += self.continuous_weight * self.continuous.expected_cost_vec(y)
        return cost

    def expected_cost_squared(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        second = 0.0
        for atom in self.atoms:
            per_atom = y if y < atom.location else atom.location + self.break_even
            second += atom.mass * per_atom * per_atom
        if self.continuous is not None and self.continuous_weight > 0.0:
            second += self.continuous_weight * self.continuous.expected_cost_squared(y)
        return second
