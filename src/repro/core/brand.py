"""b-Rand: the truncated-exponential strategy the paper's ansatz misses.

**Reproduction finding.**  The paper's Section 4 restricts the strategy
space to Eq. (18): the *full-support* exponential density of N-Rand plus
atoms at ``ε``, ``b`` and ``B``, and concludes the optimum is one of four
vertices.  Solving the constrained minimax game numerically
(:mod:`repro.core.minimax`) shows this is not the true optimum: in (and
around) the paper's b-DET region, the game's optimal strategy is an
**exponential density truncated to** ``[0, β]`` with ``β < B`` — a
randomized analogue of b-DET that we call **b-Rand**.

Closed forms (with ``c = 1 / (B (e^{β/B} - 1))`` the normalizer):

* pdf ``p(x) = c e^{x/B}`` on ``[0, β]``;
* per-stop expected cost ``h(y) = (1 + cB) y`` for ``y <= β`` and the
  constant ``h(β) = cBβe^{β/B}`` for ``y >= β`` — linear then flat,
  hence *concave*, so the adversary's best response concentrates the
  short-stop mass at the conditional mean ``ȳ = μ⁻/(1-q⁺)``;
* worst-case expected cost over Q:
  ``(1-q⁺) h(min(ȳ, β-ish)) + q⁺ h(β)`` (both branches implemented);
* the unconstrained-branch optimum ``β* = B t*`` solves
  ``e^t - 1 - t = μ⁻ / (q⁺ B)``, which has a solution in ``(0, 1]`` iff
  ``μ⁻ <= (e - 2) q⁺ B``; otherwise ``β* = B`` and b-Rand *is* N-Rand.

:class:`ImprovedConstrainedSolver` adds b-Rand as a fifth candidate; its
worst-case CR provably never exceeds the paper's (b-Rand at ``β = B`` is
N-Rand) and is strictly smaller over a large region — see
``benchmarks/bench_improved.py`` and the discrepancy note in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..constants import E
from ..errors import DegenerateStatisticsError, InvalidParameterError
from .constrained import ConstrainedSkiRentalSolver, Selection, VertexEvaluation
from .costs import validate_break_even, validate_stop_length
from .stats import StopStatistics
from .strategy import ContinuousRandomizedStrategy, Strategy

__all__ = [
    "BRand",
    "optimal_beta",
    "b_rand_worst_case_cost",
    "ImprovedSelection",
    "ImprovedConstrainedSolver",
]


class BRand(ContinuousRandomizedStrategy):
    """Exponential threshold density truncated to ``[0, beta]``.

    ``beta = B`` recovers N-Rand exactly (Eq. 7).
    """

    name = "b-Rand"

    def __init__(self, break_even: float, beta: float) -> None:
        super().__init__(break_even)
        b = self.break_even
        value = float(beta)
        if not 0.0 < value <= b:
            raise InvalidParameterError(
                f"beta must lie in (0, B] = (0, {b}], got {beta!r}"
            )
        self.beta = value
        self.support_hi = value
        #: Normalizer c = 1 / (B (e^{beta/B} - 1)).
        self._c = 1.0 / (b * math.expm1(value / b))

    def pdf(self, threshold: float) -> float:
        x = float(threshold)
        if not 0.0 <= x <= self.beta:
            return 0.0
        return self._c * math.exp(x / self.break_even)

    def cdf(self, threshold: float) -> float:
        x = float(threshold)
        if x <= 0.0:
            return 0.0
        if x >= self.beta:
            return 1.0
        return self._c * self.break_even * math.expm1(x / self.break_even)

    def inverse_cdf(self, quantile: float) -> float:
        u = float(quantile)
        if not 0.0 <= u <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {quantile!r}")
        return self.break_even * math.log1p(
            u * math.expm1(self.beta / self.break_even)
        )

    def pdf_vec(self, thresholds: np.ndarray) -> np.ndarray:
        x = np.asarray(thresholds, dtype=float)
        inside = (x >= 0.0) & (x <= self.beta)
        return np.where(
            inside,
            self._c * np.exp(np.clip(x, 0.0, self.beta) / self.break_even),
            0.0,
        )

    def inverse_cdf_vec(self, quantiles: np.ndarray) -> np.ndarray:
        u = np.asarray(quantiles, dtype=float)
        if np.any(~np.isfinite(u)) or np.any((u < 0.0) | (u > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        return self.break_even * np.log1p(
            u * math.expm1(self.beta / self.break_even)
        )

    def partial_cost_integral(self, stop_length: float) -> float:
        # ∫₀^y (x + B) c e^{x/B} dx = c B y e^{y/B}  (same primitive as N-Rand).
        y = min(float(stop_length), self.beta)
        if y <= 0.0:
            return 0.0
        b = self.break_even
        return self._c * b * y * math.exp(y / b)

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        b = self.break_even
        if y <= self.beta:
            return (1.0 + self._c * b) * y
        return self._c * b * self.beta * math.exp(self.beta / b)

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        y = np.asarray(stop_lengths, dtype=float)
        b = self.break_even
        flat = self._c * b * self.beta * math.exp(self.beta / b)
        return np.where(y <= self.beta, (1.0 + self._c * b) * y, flat)

    def expected_cost_squared(self, stop_length: float) -> float:
        # Same primitive as N-Rand: ∫ (x+B)² e^{x/B} dx = B e^{x/B}(x²+B²).
        y = validate_stop_length(stop_length)
        b = self.break_even
        yc = min(y, self.beta)
        restart_part = self._c * b * (
            math.exp(yc / b) * (yc * yc + b * b) - b * b
        )
        survive_part = y * y * (1.0 - self.cdf(y))
        return restart_part + survive_part

    def flat_cost(self) -> float:
        """The constant cost paid on every stop outlasting ``beta``."""
        b = self.break_even
        return self._c * b * self.beta * math.exp(self.beta / b)


def _worst_case_cost_at_beta(stats: StopStatistics, beta: float) -> float:
    """Exact worst-case expected cost of b-Rand(beta) over Q.

    The per-stop cost is concave (linear then flat), so the adversary
    concentrates the short-stop mass ``1 - q⁺`` at the conditional mean
    ``ȳ``; long stops pay the flat cost.
    """
    strategy = BRand(stats.break_even, beta)
    flat = strategy.flat_cost()
    short_mass = 1.0 - stats.q_b_plus
    if short_mass <= 0.0:
        return stats.q_b_plus * flat
    conditional = stats.mu_b_minus / short_mass
    return short_mass * strategy.expected_cost(min(conditional, stats.break_even)) + (
        stats.q_b_plus * flat
    )


def optimal_beta(stats: StopStatistics) -> float:
    """The cost-minimizing truncation ``β*``.

    Stationarity of the (ȳ <= β) branch gives
    ``e^t - 1 - t = μ⁻ / (q⁺ B)`` with ``t = β/B``; since
    ``g(t) = e^t - 1 - t`` increases from 0 to ``e - 2`` on (0, 1], an
    interior optimum exists iff ``μ⁻ <= (e - 2) q⁺ B`` — otherwise
    ``β* = B`` (N-Rand).  The stationary point is polished against the
    exact branch-aware worst-case cost in case the adversary's
    conditional mean exceeds it.
    """
    if stats.q_b_plus <= 0.0:
        return stats.break_even
    ratio = stats.mu_b_minus / (stats.q_b_plus * stats.break_even)
    if ratio >= E - 2.0:
        return stats.break_even
    if ratio <= 1e-200:
        # mu- ~ 0: cost(t) = q+ B t e^t/(e^t-1) -> minimized as t -> 0
        # (limit q+ B); return a tiny but valid truncation.
        return stats.break_even * 1e-9 if stats.break_even > 0 else stats.break_even
    # Bracket below the root: g(t) = e^t - 1 - t ~ t^2/2 for small t, so
    # t_lo = 0.1 sqrt(ratio) gives g(t_lo) ~ ratio/200 < ratio.
    t_lo = min(0.1 * math.sqrt(ratio), 0.5)
    t_star = optimize.brentq(
        lambda t: math.expm1(t) - t - ratio, t_lo, 1.0, xtol=1e-14
    )
    beta = t_star * stats.break_even
    # Branch check: if the conditional mean exceeds beta*, the concave
    # branch changes; polish numerically around the stationary point.
    conditional = stats.short_stop_conditional_mean
    if conditional > beta:
        result = optimize.minimize_scalar(
            lambda b_val: _worst_case_cost_at_beta(stats, b_val),
            bounds=(min(conditional, stats.break_even * 0.999), stats.break_even),
            method="bounded",
        )
        if result.fun < _worst_case_cost_at_beta(stats, beta):
            return float(result.x)
    return beta


def b_rand_worst_case_cost(stats: StopStatistics) -> float:
    """Worst-case expected cost of b-Rand at the optimal truncation."""
    return _worst_case_cost_at_beta(stats, optimal_beta(stats))


@dataclass(frozen=True)
class ImprovedSelection:
    """Outcome of the five-candidate (paper + b-Rand) solver."""

    stats: StopStatistics
    paper_selection: Selection
    b_rand_beta: float
    b_rand_cost: float
    chosen_name: str
    worst_case_cost: float

    @property
    def worst_case_cr(self) -> float:
        return self.worst_case_cost / self.stats.expected_offline_cost

    @property
    def improvement_over_paper(self) -> float:
        """Paper's optimal worst-case CR minus ours (>= 0)."""
        return self.paper_selection.worst_case_cr - self.worst_case_cr

    def build_strategy(self) -> Strategy:
        if self.chosen_name == "b-Rand":
            return BRand(self.stats.break_even, self.b_rand_beta)
        return self.paper_selection.build_strategy()


class ImprovedConstrainedSolver:
    """The paper's solver plus the b-Rand candidate.

    Because ``BRand(B) == N-Rand``, the improved optimum never exceeds
    the paper's; it is strictly smaller wherever a truncation ``β < B``
    helps (most of the paper's b-DET region and a band of its N-Rand and
    boundary regions).
    """

    def __init__(self, stats: StopStatistics) -> None:
        if stats.expected_offline_cost <= 0.0:
            raise DegenerateStatisticsError(
                "degenerate statistics: expected offline cost is zero"
            )
        self.stats = stats

    def select(self) -> ImprovedSelection:
        paper = ConstrainedSkiRentalSolver(self.stats).select()
        beta = optimal_beta(self.stats)
        # Clamp the degenerate mu- = 0 corner to a usable truncation.
        beta = max(beta, self.stats.break_even * 1e-9)
        cost = _worst_case_cost_at_beta(self.stats, beta)
        if cost < paper.chosen.worst_case_cost - 1e-12:
            chosen_name, chosen_cost = "b-Rand", cost
        else:
            chosen_name, chosen_cost = paper.name, paper.chosen.worst_case_cost
        return ImprovedSelection(
            stats=self.stats,
            paper_selection=paper,
            b_rand_beta=beta,
            b_rand_cost=cost,
            chosen_name=chosen_name,
            worst_case_cost=chosen_cost,
        )
