"""Learning-augmented ski rental: using stop-length predictions.

A modern extension of the paper's setting (Purohit, Svitkina & Kumar,
NeurIPS 2018): the controller receives a *prediction* ``ŷ`` of the stop
length — in a vehicle, from navigation data, V2I signal-phase broadcasts
or a learned traffic model — and a trust parameter ``λ ∈ (0, 1]``:

* **Deterministic PSK**: if ``ŷ >= B`` shut off at ``λB``, else idle
  until ``B/λ``.  Guarantees: cost ≤ ``(1 + λ) OPT`` when the prediction
  is perfect (*consistency*) and ≤ ``(1 + 1/λ) OPT`` for any prediction
  (*robustness*); λ → 0 trusts the prediction fully, λ = 1 recovers DET.

Both bounds are verified exactly by the test suite; the benchmark sweeps
prediction noise to show the consistency/robustness trade-off, and the
drive-cycle integration derives predictions from the simulator's signal
timing (a vehicle stopped at a red light *knows* the remaining red from
signal-phase data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .costs import validate_break_even, validate_stop_length
from .strategy import Strategy

__all__ = [
    "PredictedThreshold",
    "psk_threshold",
    "PSKStrategy",
    "consistency_bound",
    "robustness_bound",
    "NoisyOracle",
]


def psk_threshold(prediction: float, break_even: float, trust: float) -> float:
    """The PSK deterministic threshold for one stop.

    Long prediction (``ŷ >= B``) → commit early at ``λB``; short
    prediction → hold out until ``B/λ``.
    """
    b = validate_break_even(break_even)
    y_hat = validate_stop_length(prediction)
    if not 0.0 < trust <= 1.0:
        raise InvalidParameterError(f"trust must lie in (0, 1], got {trust!r}")
    if y_hat >= b:
        return trust * b
    return b / trust


def consistency_bound(trust: float) -> float:
    """Competitive ratio when the prediction is perfect: ``1 + λ``."""
    if not 0.0 < trust <= 1.0:
        raise InvalidParameterError(f"trust must lie in (0, 1], got {trust!r}")
    return 1.0 + trust


def robustness_bound(trust: float) -> float:
    """Competitive ratio against adversarial predictions: ``1 + 1/λ``."""
    if not 0.0 < trust <= 1.0:
        raise InvalidParameterError(f"trust must lie in (0, 1], got {trust!r}")
    return 1.0 + 1.0 / trust


@dataclass(frozen=True)
class PredictedThreshold:
    """One stop's decision under PSK: the prediction and the threshold."""

    prediction: float
    threshold: float


class PSKStrategy(Strategy):
    """Prediction-augmented strategy over a stop stream.

    Unlike the distribution-level strategies, PSK needs a *per-stop*
    prediction; supply a ``predictor`` callable mapping the stop index to
    ``ŷ`` (e.g. wired to signal-phase data), or call
    :meth:`threshold_for` directly.

    ``expected_cost`` treats the strategy's prediction for the evaluated
    stop as coming from ``predictor(None)`` — appropriate only when a
    single stationary prediction applies; per-stop pipelines should use
    :meth:`decide_sequence`.
    """

    name = "PSK"

    def __init__(self, break_even: float, trust: float, predictor) -> None:
        super().__init__(break_even)
        if not 0.0 < trust <= 1.0:
            raise InvalidParameterError(f"trust must lie in (0, 1], got {trust!r}")
        if not callable(predictor):
            raise InvalidParameterError("predictor must be callable")
        self.trust = float(trust)
        self.predictor = predictor

    def threshold_for(self, prediction: float) -> float:
        return psk_threshold(prediction, self.break_even, self.trust)

    def draw_threshold(self, rng: np.random.Generator) -> float:
        return self.threshold_for(float(self.predictor(None)))

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        x = self.threshold_for(float(self.predictor(None)))
        if y < x:
            return y
        return x + self.break_even

    def decide_sequence(self, stop_lengths: np.ndarray) -> list[PredictedThreshold]:
        """Thresholds for a whole stop stream, one prediction per stop."""
        y = np.asarray(stop_lengths, dtype=float)
        decisions = []
        for index in range(y.size):
            prediction = float(self.predictor(index))
            decisions.append(
                PredictedThreshold(
                    prediction=prediction, threshold=self.threshold_for(prediction)
                )
            )
        return decisions

    def realized_costs(self, stop_lengths: np.ndarray) -> np.ndarray:
        """Per-stop costs of running PSK over a stream (Eq. 3 applied to
        each per-stop threshold)."""
        y = np.asarray(stop_lengths, dtype=float)
        costs = np.empty(y.size)
        for index, decision in enumerate(self.decide_sequence(y)):
            if y[index] < decision.threshold:
                costs[index] = y[index]
            else:
                costs[index] = decision.threshold + self.break_even
        return costs


class NoisyOracle:
    """Prediction source: the true stop length corrupted by lognormal
    multiplicative noise (``sigma = 0`` is a perfect oracle).

    Build it over a known stop sequence; it predicts
    ``y_i * exp(sigma * z_i)`` for stop ``i``.
    """

    def __init__(
        self,
        stop_lengths,
        sigma: float,
        rng: np.random.Generator,
    ) -> None:
        if sigma < 0.0:
            raise InvalidParameterError(f"sigma must be >= 0, got {sigma!r}")
        y = np.asarray(stop_lengths, dtype=float)
        if y.size == 0:
            raise InvalidParameterError("oracle needs at least one stop")
        noise = np.exp(sigma * rng.standard_normal(y.size)) if sigma > 0 else 1.0
        self.predictions = y * noise

    def __call__(self, index) -> float:
        if index is None:
            return float(self.predictions.mean())
        return float(self.predictions[int(index)])
