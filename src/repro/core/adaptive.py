"""Adaptive online selection: estimate the statistics while driving.

The paper assumes ``(mu_B_minus, q_B_plus)`` are known; in a deployed
stop-start system they must be *estimated from the stops seen so far*.
:class:`AdaptiveProposed` closes that loop:

* before ``min_samples`` stops have been observed it plays N-Rand —
  the best distribution-free guarantee (``e/(e-1)``);
* from then on it re-solves the constrained ski-rental problem after
  every observed stop and plays the current winning vertex.

The estimator is streaming (O(1) memory): a count, the running sum of
short-stop lengths, and the count of long stops.  ``observe`` must be
called with each *completed* stop's length — information available to a
real controller once the vehicle moves off, whatever action it took.

The ablation benchmark measures how quickly the adaptive selector's
realized CR converges to the omniscient static selector's.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .constrained import ConstrainedSkiRentalSolver
from .costs import validate_break_even, validate_stop_length
from .randomized import NRand
from .stats import StopStatistics
from .strategy import Strategy

__all__ = ["AdaptiveProposed"]

#: How often (in observations) the decayed accumulators are checked for
#: underflow.  Interval-based so live streams and WAL replays renormalize
#: at identical points — the schedule is a pure function of the count.
RENORM_INTERVAL = 4096

#: Flush threshold for decayed accumulators.  With ``decay < 1`` an
#: accumulator that stops receiving mass shrinks geometrically and, after
#: ~``708 / (1 - decay)`` stops, drops below the smallest normal float
#: (~2.2e-308): arithmetic on such denormals is 10-100x slower on most
#: CPUs and eventually rounds to zero anyway.  Anything below 1e-290
#: carries no information at automotive scales (stop lengths are
#: O(1..1e4) seconds), so it is flushed to an exact 0.0.
RENORM_FLUSH = 1e-290


class AdaptiveProposed(Strategy):
    """The proposed algorithm with online statistics estimation."""

    name = "Adaptive"

    def __init__(
        self,
        break_even: float,
        min_samples: int = 10,
        prior_stops=None,
        decay: float = 1.0,
    ) -> None:
        """``decay`` < 1 applies exponential forgetting: each new stop
        multiplies all previous observation weights by ``decay``, so the
        estimator tracks traffic regime shifts (effective window
        ``1 / (1 - decay)`` stops).  ``decay = 1`` keeps full history."""
        super().__init__(break_even)
        if min_samples < 1:
            raise InvalidParameterError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(f"decay must lie in (0, 1], got {decay!r}")
        self.min_samples = int(min_samples)
        self.decay = float(decay)
        self._count = 0
        self._weight = 0.0
        self._short_sum = 0.0
        self._long_weight = 0.0
        self._fallback = NRand(self.break_even)
        self._current: Strategy = self._fallback
        self._current_name = self._fallback.name
        if prior_stops is not None:
            for stop_length in np.asarray(prior_stops, dtype=float).ravel():
                self.observe(float(stop_length))

    @property
    def observed_stops(self) -> int:
        """Number of stops observed so far."""
        return self._count

    @property
    def selected_name(self) -> str:
        """Name of the strategy currently being played."""
        return self._current_name

    def observe(self, stop_length: float) -> None:
        """Feed one completed stop's length into the estimator and
        re-select the strategy if warm."""
        y = validate_stop_length(stop_length)
        self._count += 1
        self._weight = self._weight * self.decay + 1.0
        self._short_sum *= self.decay
        self._long_weight *= self.decay
        if y >= self.break_even:
            self._long_weight += 1.0
        else:
            self._short_sum += y
        if self._count % RENORM_INTERVAL == 0:
            self._renormalize()
        if self._count >= self.min_samples:
            self._reselect()

    def observe_many(self, stop_lengths) -> None:
        """Feed a batch of completed stops, re-selecting once at the end.

        The estimator state after this call is bit-identical to calling
        :meth:`observe` per stop (same sequential arithmetic, same
        renormalization schedule); only the *selection* differs during
        the batch — it is refreshed once after the last stop instead of
        after every stop, which is what makes very long streams (1e7+
        observations) tractable: re-solving the constrained problem per
        stop dominates the cost otherwise.
        """
        y = np.asarray(stop_lengths, dtype=float).ravel()
        if y.size == 0:
            return
        if np.any(~np.isfinite(y)) or np.any(y < 0.0):
            raise InvalidParameterError("stop lengths must be non-negative and finite")
        # Hot loop: locals beat attribute lookups ~3x at 1e7 iterations.
        count = self._count
        weight = self._weight
        short_sum = self._short_sum
        long_weight = self._long_weight
        decay = self.decay
        break_even = self.break_even
        for value in y.tolist():
            count += 1
            weight = weight * decay + 1.0
            short_sum *= decay
            long_weight *= decay
            if value >= break_even:
                long_weight += 1.0
            else:
                short_sum += value
            if count % RENORM_INTERVAL == 0:
                if 0.0 < short_sum < RENORM_FLUSH:
                    short_sum = 0.0
                if 0.0 < long_weight < RENORM_FLUSH:
                    long_weight = 0.0
        self._count = count
        self._weight = weight
        self._short_sum = short_sum
        self._long_weight = long_weight
        if self._count >= self.min_samples:
            self._reselect()

    def _renormalize(self) -> None:
        """Flush denormal-bound accumulators to an exact zero.

        Only the decayed accumulators can underflow (``_weight`` is
        bounded below by 1); flushing them to 0.0 is idempotent and
        absorbing (``0.0 * decay == 0.0``), so replaying the same stream
        always reproduces the same state.
        """
        if 0.0 < self._short_sum < RENORM_FLUSH:
            self._short_sum = 0.0
        if 0.0 < self._long_weight < RENORM_FLUSH:
            self._long_weight = 0.0

    def to_state(self) -> dict:
        """JSON-serializable estimator state (see :meth:`from_state`).

        Floats round-trip bit-exactly through JSON (``repr``-based
        encoding), which is what the crash-safe advisor service relies
        on for its snapshots.
        """
        return {
            "break_even": self.break_even,
            "min_samples": self.min_samples,
            "decay": self.decay,
            "count": self._count,
            "weight": self._weight,
            "short_sum": self._short_sum,
            "long_weight": self._long_weight,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AdaptiveProposed":
        """Rebuild an estimator from :meth:`to_state` output.

        The restored instance is bit-identical to the original: same
        accumulators, and the strategy selection is re-derived from them
        (it is a pure function of the estimator state).
        """
        restored = cls(
            break_even=float(state["break_even"]),
            min_samples=int(state["min_samples"]),
            decay=float(state["decay"]),
        )
        restored._count = int(state["count"])
        restored._weight = float(state["weight"])
        restored._short_sum = float(state["short_sum"])
        restored._long_weight = float(state["long_weight"])
        if restored._count >= restored.min_samples:
            restored._reselect()
        return restored

    def current_statistics(self) -> StopStatistics | None:
        """The running (possibly decayed) estimate, or None before any
        stop was seen."""
        if self._count == 0:
            return None
        return StopStatistics(
            mu_b_minus=self._short_sum / self._weight,
            q_b_plus=min(1.0, self._long_weight / self._weight),
            break_even=self.break_even,
        )

    def _reselect(self) -> None:
        stats = self.current_statistics()
        if stats is None or stats.expected_offline_cost <= 0.0:
            # All observed stops had zero length; keep the fallback.
            self._current = self._fallback
            self._current_name = self._fallback.name
            return
        selection = ConstrainedSkiRentalSolver(stats).select()
        self._current = selection.build_strategy()
        self._current_name = selection.name

    # -- Strategy interface: delegate to the current selection ------------

    def draw_threshold(self, rng: np.random.Generator) -> float:
        return self._current.draw_threshold(rng)

    def expected_cost(self, stop_length: float) -> float:
        return self._current.expected_cost(stop_length)

    def expected_cost_squared(self, stop_length: float) -> float:
        return self._current.expected_cost_squared(stop_length)

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        return self._current.expected_cost_vec(stop_lengths)

    def run_online(
        self, stop_lengths: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Process a stop sequence in order: decide *then* observe each
        stop (the true online protocol).  Returns per-stop realized costs.
        """
        y = np.asarray(stop_lengths, dtype=float)
        costs = np.empty(y.size)
        for index, stop_length in enumerate(y):
            threshold = self.draw_threshold(rng)
            if stop_length < threshold:
                costs[index] = stop_length
            else:
                costs[index] = threshold + self.break_even
            self.observe(float(stop_length))
        return costs
