"""Sensitivity of the proposed algorithm to misspecified statistics.

The guarantee of Section 4 assumes the true ``(mu_B_minus, q_B_plus)``.
In practice they are estimated; this module answers *how much estimation
error the selector tolerates*:

* :func:`misspecified_worst_case_cr` — build the strategy from
  *estimated* statistics, then evaluate its worst case over the
  ambiguity set of the *true* statistics (via the moment LP);
* :func:`robustness_margin` — the largest relative perturbation of both
  statistics under which the misspecified strategy still beats the
  statistics-free N-Rand guarantee ``e/(e-1)``.

Together with the estimation-noise ablation
(``benchmarks/bench_ablation.py``) this quantifies the practical safety
of running the selector on a week of data.
"""

from __future__ import annotations

import numpy as np

from ..constants import E_RATIO
from ..errors import DegenerateStatisticsError, InvalidParameterError
from .analysis import worst_case_cr
from .constrained import ProposedOnline
from .stats import StopStatistics

__all__ = ["misspecified_worst_case_cr", "robustness_margin", "perturbed_statistics"]


def perturbed_statistics(
    stats: StopStatistics, mu_factor: float, q_factor: float
) -> StopStatistics:
    """Multiplicatively perturb the statistics, clipping into the
    feasible region (``q in [0, 1]``, ``mu <= (1-q) B``)."""
    if mu_factor < 0.0 or q_factor < 0.0:
        raise InvalidParameterError("perturbation factors must be >= 0")
    q = min(1.0, stats.q_b_plus * q_factor)
    mu_cap = (1.0 - q) * stats.break_even
    mu = min(stats.mu_b_minus * mu_factor, mu_cap)
    return StopStatistics(mu_b_minus=mu, q_b_plus=q, break_even=stats.break_even)


def misspecified_worst_case_cr(
    true_stats: StopStatistics,
    estimated_stats: StopStatistics,
    grid_size: int = 512,
) -> float:
    """Worst-case expected CR (over the *true* ambiguity set) of the
    strategy the selector builds from the *estimated* statistics."""
    if abs(true_stats.break_even - estimated_stats.break_even) > 1e-12:
        raise InvalidParameterError("statistics must share the break-even interval")
    if estimated_stats.expected_offline_cost <= 0.0:
        raise DegenerateStatisticsError("estimated statistics are degenerate")
    strategy = ProposedOnline(estimated_stats)
    return worst_case_cr(strategy.delegate, true_stats, grid_size)


def robustness_margin(
    true_stats: StopStatistics,
    factors=(1.05, 1.1, 1.25, 1.5, 2.0, 3.0),
    grid_size: int = 256,
) -> float:
    """Largest tested symmetric misspecification factor ``f`` such that
    the strategy built from statistics perturbed by every combination in
    ``{1/f, f}²`` still has true worst-case CR <= e/(e-1).

    Returns 1.0 when even the smallest tested perturbation breaks the
    N-Rand guarantee (the selection sits on a knife's edge), and the
    largest tested factor when nothing breaks it.
    """
    if true_stats.expected_offline_cost <= 0.0:
        raise DegenerateStatisticsError("true statistics are degenerate")
    safe = 1.0
    for factor in sorted(factors):
        worst = 1.0
        for mu_factor in (1.0 / factor, factor):
            for q_factor in (1.0 / factor, factor):
                estimated = perturbed_statistics(true_stats, mu_factor, q_factor)
                if estimated.expected_offline_cost <= 0.0:
                    continue
                value = misspecified_worst_case_cr(
                    true_stats, estimated, grid_size
                )
                worst = max(worst, value)
        if worst <= E_RATIO + 1e-9:
            safe = factor
        else:
            break
    return safe
