"""Worst-case stop-length distributions inside the ambiguity set Q.

The constrained ski-rental analysis repeatedly constructs adversarial
distributions compatible with given ``(mu_B_minus, q_B_plus)``:

* :func:`worst_case_for_bdet` — the Section 4.4 worst case against b-DET:
  all short-stop mass at 0 or exactly ``b`` (``mu_1 = 0``,
  ``q_2 = mu_B_minus / b``), plus the long-stop mass at ``y >= B``.
  Against this distribution b-DET's expected cost equals
  ``(b + B)(mu_B_minus / b + q_B_plus)`` — Eq. (34) — exactly.
* :func:`conditional_mean_adversary` — the two-point distribution used to
  prove ``b`` must exceed the conditional short-stop mean: short stops at
  ``mu_B_minus / (1 - q_B_plus)``, long stops at an arbitrary ``y > B``.
* :func:`appendix_a_adversary` — the Appendix A construction showing mass
  above ``B`` never helps the online player: stops fall in
  ``[0, B] ∪ [c, ∞)`` with nothing in ``(B, c)``, making any threshold
  ``x = c > B`` cost ``mu_B_minus + q_B_plus (c + B) >= cost(DET)``.

All constructions return
:class:`~repro.distributions.discrete.DiscreteStopDistribution` instances
whose statistics round-trip to the requested ``(mu_B_minus, q_B_plus)``
(verified by the property tests).
"""

from __future__ import annotations

from ..distributions.discrete import DiscreteStopDistribution
from ..errors import InvalidParameterError
from .stats import StopStatistics

__all__ = [
    "worst_case_for_bdet",
    "conditional_mean_adversary",
    "appendix_a_adversary",
]


def _long_stop_length(stats: StopStatistics, long_length: float | None) -> float:
    """Validate / default the adversary's long-stop location (``>= B``)."""
    if long_length is None:
        return 2.0 * stats.break_even
    value = float(long_length)
    if value < stats.break_even:
        raise InvalidParameterError(
            f"long stops must be at least B={stats.break_even}, got {long_length!r}"
        )
    return value


def worst_case_for_bdet(
    stats: StopStatistics,
    b: float,
    long_length: float | None = None,
) -> DiscreteStopDistribution:
    """The worst-case distribution in Q against b-DET with threshold ``b``.

    Mass ``q_2 = mu_B_minus / b`` at exactly ``b`` (these stops pay the
    full ``b + B`` while exactly exhausting the short-stop mean budget),
    mass ``q_B_plus`` at a long stop, and the rest at 0.

    Raises
    ------
    InvalidParameterError
        If ``b`` is outside ``(0, B)`` or the implied ``q_2`` exceeds the
        available short-stop probability ``1 - q_B_plus``.
    """
    if not 0.0 < float(b) < stats.break_even:
        raise InvalidParameterError(
            f"b must lie in (0, B) = (0, {stats.break_even}), got {b!r}"
        )
    q2 = stats.mu_b_minus / float(b)
    if q2 > 1.0 - stats.q_b_plus + 1e-12:
        raise InvalidParameterError(
            f"q_2 = mu_B_minus / b = {q2} exceeds the short-stop probability "
            f"{1.0 - stats.q_b_plus}; pick b > mu_B_minus / (1 - q_B_plus)"
        )
    q2 = min(q2, 1.0 - stats.q_b_plus)
    long_at = _long_stop_length(stats, long_length)
    values, probs = [], []
    p0 = 1.0 - stats.q_b_plus - q2
    if p0 > 0.0:
        values.append(0.0)
        probs.append(p0)
    if q2 > 0.0:
        values.append(float(b))
        probs.append(q2)
    if stats.q_b_plus > 0.0:
        values.append(long_at)
        probs.append(stats.q_b_plus)
    return DiscreteStopDistribution(values, probs, name="worst-case-vs-b-DET")


def conditional_mean_adversary(
    stats: StopStatistics,
    long_length: float | None = None,
) -> DiscreteStopDistribution:
    """Two-point adversary with short stops at the conditional mean
    ``mu_B_minus / (1 - q_B_plus)`` — makes any b-DET with
    ``b <=`` that mean pay ``b + B`` on *every* stop (worse than TOI)."""
    if stats.q_b_plus >= 1.0:
        raise InvalidParameterError(
            "conditional-mean adversary needs some short-stop mass (q_B_plus < 1)"
        )
    short_at = stats.short_stop_conditional_mean
    if short_at >= stats.break_even:
        raise InvalidParameterError(
            "conditional short-stop mean must be below B for a valid adversary"
        )
    long_at = _long_stop_length(stats, long_length)
    if stats.q_b_plus == 0.0:
        return DiscreteStopDistribution([short_at], [1.0], name="conditional-mean")
    return DiscreteStopDistribution(
        [short_at, long_at],
        [1.0 - stats.q_b_plus, stats.q_b_plus],
        name="conditional-mean",
    )


def appendix_a_adversary(
    stats: StopStatistics,
    c: float,
    epsilon: float = 1e-6,
) -> DiscreteStopDistribution:
    """Appendix A construction: no stop mass in ``(B, c)``.

    Short stops sit at the conditional mean (inside ``[0, B)``) and long
    stops at ``c + epsilon`` (so a threshold of ``c`` still pays the
    restart on every long stop).  Against this distribution, idling until
    ``c > B`` costs ``mu_B_minus + q_B_plus (c + B)``, which dominates
    DET's ``mu_B_minus + 2 q_B_plus B`` — the Eq. (40) argument.
    """
    if float(c) <= stats.break_even:
        raise InvalidParameterError(
            f"Appendix A adversary needs c > B = {stats.break_even}, got {c!r}"
        )
    if stats.q_b_plus >= 1.0:
        long_at = float(c) + float(epsilon)
        return DiscreteStopDistribution([long_at], [1.0], name="appendix-a")
    short_at = stats.short_stop_conditional_mean
    long_at = float(c) + float(epsilon)
    if stats.q_b_plus == 0.0:
        return DiscreteStopDistribution([short_at], [1.0], name="appendix-a")
    return DiscreteStopDistribution(
        [short_at, long_at],
        [1.0 - stats.q_b_plus, stats.q_b_plus],
        name="appendix-a",
    )
