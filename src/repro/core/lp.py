"""The explicit linear program of Section 4.4.

After the augmented-Lagrangian elimination (Sections 4.1-4.3), the
constrained ski-rental problem reduces to the LP of Eqs. (32)-(33) over
the atom masses ``(α, β, γ)`` of the generic strategy form:

.. math::

    \\min_{\\alpha, \\beta, \\gamma}\\;
        K_\\alpha \\alpha + K_\\beta \\beta + K_\\gamma \\gamma
        + \\tfrac{e}{e-1}(\\mu^- + q^+ B)
    \\quad \\text{s.t. } \\alpha + \\beta + \\gamma \\le 1,\\;
        \\alpha, \\beta, \\gamma \\ge 0

with the vertex-cost deltas

* ``K_α = B − e/(e−1)(μ⁻ + q⁺B)``                      (TOI minus N-Rand),
* ``K_β = (μ⁻ + 2q⁺B) − e/(e−1)(μ⁻ + q⁺B)``            (DET minus N-Rand),
* ``K_γ = (√μ⁻ + √(q⁺B))² − e/(e−1)(μ⁻ + q⁺B)``        (b-DET at the
  worst-case ``μ₁ = 0``, ``q₂ = μ⁻/b*`` — minus N-Rand); b-DET is excluded
  (``γ = 0``) when condition (36) fails.

Solving this LP with :func:`scipy.optimize.linprog` and reading the
optimal vertex off the basic solution is an independent cross-check of the
analytic selection rule in
:class:`repro.core.constrained.ConstrainedSkiRentalSolver`; the two are
asserted to agree (and the library treats disagreement as a bug via
:class:`~repro.errors.SolverError`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..constants import E
from ..errors import SolverError
from .constrained import (
    ConstrainedSkiRentalSolver,
    Selection,
    worst_case_cost_bdet,
)
from .stats import StopStatistics

__all__ = ["LPCoefficients", "lp_coefficients", "solve_lp", "verify_against_lp"]


@dataclass(frozen=True)
class LPCoefficients:
    """The objective coefficients of Eq. (32) plus the constant term."""

    k_alpha: float
    k_beta: float
    k_gamma: float
    constant: float
    b_det_admissible: bool


def lp_coefficients(stats: StopStatistics) -> LPCoefficients:
    """Compute ``K_α``, ``K_β``, ``K_γ`` and the N-Rand constant term."""
    offline = stats.expected_offline_cost
    n_rand_cost = E / (E - 1.0) * offline
    bdet_cost = worst_case_cost_bdet(stats)
    admissible = math.isfinite(bdet_cost)
    return LPCoefficients(
        k_alpha=stats.break_even - n_rand_cost,
        k_beta=(stats.mu_b_minus + 2.0 * stats.q_b_plus * stats.break_even) - n_rand_cost,
        k_gamma=(bdet_cost - n_rand_cost) if admissible else math.inf,
        constant=n_rand_cost,
        b_det_admissible=admissible,
    )


@dataclass(frozen=True)
class LPSolution:
    """Optimal atom masses and the resulting worst-case expected cost."""

    alpha: float
    beta: float
    gamma: float
    cost: float
    vertex_name: str


def solve_lp(stats: StopStatistics) -> LPSolution:
    """Solve the Section 4.4 LP numerically with HiGHS.

    The optimum is always at a vertex of the simplex
    ``{α + β + γ <= 1, α, β, γ >= 0}``; the returned ``vertex_name`` maps
    the basic solution back to the strategy names (N-Rand for the origin).
    """
    coefficients = lp_coefficients(stats)
    if coefficients.b_det_admissible:
        c = np.array([coefficients.k_alpha, coefficients.k_beta, coefficients.k_gamma])
        bounds = [(0.0, 1.0)] * 3
    else:
        c = np.array([coefficients.k_alpha, coefficients.k_beta, 0.0])
        bounds = [(0.0, 1.0), (0.0, 1.0), (0.0, 0.0)]
    result = optimize.linprog(
        c=c,
        A_ub=np.array([[1.0, 1.0, 1.0]]),
        b_ub=np.array([1.0]),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"Section 4.4 LP failed to solve: {result.message}")
    alpha, beta, gamma = (float(v) for v in result.x)
    cost = float(result.fun) + coefficients.constant
    masses = {"TOI": alpha, "DET": beta, "b-DET": gamma}
    dominant = max(masses, key=masses.get)
    vertex_name = dominant if masses[dominant] > 0.5 else "N-Rand"
    return LPSolution(alpha=alpha, beta=beta, gamma=gamma, cost=cost, vertex_name=vertex_name)


def verify_against_lp(stats: StopStatistics, tolerance: float = 1e-7) -> Selection:
    """Run both the analytic vertex selection and the numeric LP; raise
    :class:`SolverError` if their optimal costs disagree beyond tolerance.

    Returns the analytic :class:`Selection` on success.  (The *names* may
    legitimately differ on region boundaries where two vertices tie; only
    the optimal cost is asserted.)
    """
    selection = ConstrainedSkiRentalSolver(stats).select()
    lp_solution = solve_lp(stats)
    analytic_cost = selection.chosen.worst_case_cost
    scale = max(1.0, abs(analytic_cost))
    if abs(lp_solution.cost - analytic_cost) > tolerance * scale:
        raise SolverError(
            "analytic vertex selection and Section 4.4 LP disagree: "
            f"analytic cost {analytic_cost} ({selection.name}) vs "
            f"LP cost {lp_solution.cost} ({lp_solution.vertex_name}) for {stats!r}"
        )
    return selection
