"""Batched analytic-evaluation kernels: sort-once prefix-sum algebra.

The fleet evaluation layer asks the same two questions about an empirical
stop sample over and over: *what is the probability mass at or above a
threshold* (``survival``) and *what do the stops below a threshold sum
to* (``partial_expectation``).  The scalar path answers them with one
:math:`O(n)` numpy scan per (strategy, threshold) pair — six strategies,
thousands of vehicles.  This module answers them for **all** thresholds
of all strategies from a single ``np.sort`` + ``np.cumsum`` per vehicle:

* :class:`PrefixSumSample` — a stop sample in sorted order with prefix
  sums of the values and their squares; every moment query becomes one
  ``np.searchsorted`` (:math:`O(\\log n)`) plus scalar arithmetic.
* :func:`strategy_cost` — the exact mean per-stop expected online cost
  of any :class:`~repro.core.strategy.Strategy` over the sample, via
  closed forms on the prefix sums (deterministic thresholds, N-Rand,
  MOM-Rand, b-Rand, mixed atoms) with a vectorised fallback.
* :func:`empirical_cr_kernel` — the Figure 4 per-vehicle CR from the
  same prefix sums.
* :func:`bootstrap_resample_indices` / :func:`bootstrap_cr_samples` —
  the vectorised bootstrap: per-stop expected costs are memoized on the
  unique values of the base sample, so resampling is one
  ``rng.integers`` call plus an index-gather and a matrix sum.
* :func:`gauss_legendre_rule` — cached fixed-node quadrature backing
  the vectorised ``expected_cost_vec`` of generic continuous strategies
  (replacing per-call adaptive ``scipy.integrate.quad``).

Validate-once convention
------------------------
Kernel inputs are validated when a :class:`PrefixSumSample` is built
(finite, non-negative, non-empty) and never again on the hot path; see
``docs/performance.md``.  All kernels agree with the scalar path within
1e-9 (enforced by ``tests/test_kernels.py`` and the benchmark gate).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..constants import E
from ..errors import DegenerateStatisticsError, InvalidParameterError
from .brand import BRand
from .constrained import DEGENERATE_B_FRACTION, ProposedOnline
from .randomized import MOMRand, NRand
from .strategy import (
    DeterministicThresholdStrategy,
    MixedStrategy,
    Strategy,
)

__all__ = [
    "PrefixSumSample",
    "strategy_cost",
    "empirical_cr_kernel",
    "bootstrap_resample_indices",
    "bootstrap_cr_samples",
    "gauss_legendre_rule",
    "quantile_pair",
    "select_vertices",
    "VERTEX_NAMES",
]

#: Vertex names indexed by the codes :func:`select_vertices` returns.
#: The order IS the solver's tie order (``_TIE_ORDER`` in
#: ``core/constrained.py``): stacking candidate costs in this order and
#: taking the first argmin reproduces ``min(vertices, key=(cost, order))``.
VERTEX_NAMES = ("TOI", "DET", "b-DET", "N-Rand")


def select_vertices(mu_b_minus, q_b_plus, break_even: float):
    """Batched ``ConstrainedSkiRentalSolver(stats).select()``.

    For arrays of ``(mu_B_minus, q_B_plus)`` estimates sharing one
    ``break_even``, returns ``(codes, thresholds)`` where ``codes[i]``
    indexes :data:`VERTEX_NAMES` and ``thresholds[i]`` is the selected
    vertex's fixed threshold (``0.0`` for TOI, ``B`` for DET, the
    ``b*`` parameter for b-DET) or NaN for N-Rand, whose threshold is
    drawn per stop.

    Bit-identical to the scalar ``AdaptiveProposed._reselect`` path,
    including its degenerate branch: rows with
    ``expected_offline_cost <= 0`` (where the solver would raise
    :class:`~repro.errors.DegenerateStatisticsError` and the estimator
    falls back) yield the N-Rand code — the fallback *is* ``NRand(B)``,
    so code and draw behavior coincide.  Every arithmetic expression
    mirrors ``evaluate_vertices`` / ``optimal_b`` /
    ``b_det_worst_case_cost`` operation for operation (same operand
    order, correctly-rounded primitives only), so the produced floats —
    not just the choices — match the scalar solver.
    """
    mu = np.asarray(mu_b_minus, dtype=float)
    q = np.asarray(q_b_plus, dtype=float)
    b_even = float(break_even)
    if b_even <= 0.0 or not math.isfinite(b_even):
        raise InvalidParameterError(
            f"break_even must be finite and > 0, got {break_even!r}"
        )
    offline = mu + q * b_even
    cost_toi = np.full(mu.shape, b_even)
    cost_det = mu + 2.0 * q * b_even
    cost_nrand = E / (E - 1.0) * offline
    # b-DET's three-way cost branch, masked exactly like the scalar
    # property: q <= 0 -> inf; mu == 0, q < 1 -> q*B (the exact value,
    # not (sqrt 0 + sqrt qB)^2, which need not round identically);
    # otherwise the closed form, gated by the feasibility condition.
    zero_mu = (q > 0.0) & (mu == 0.0) & (q < 1.0)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        condition = (
            (q > 0.0)
            & (q < 1.0)
            & (mu != 0.0)
            & (mu / b_even < (1.0 - q) ** 2 / q)
        )
        closed_form = np.square(np.sqrt(mu) + np.sqrt(q * b_even))
    cost_bdet = np.where(
        zero_mu, q * b_even, np.where(condition, closed_form, math.inf)
    )
    costs = np.stack([cost_toi, cost_det, cost_bdet, cost_nrand])
    codes = np.argmin(costs, axis=0)  # first-of-equals == tie order
    codes = np.where(offline <= 0.0, 3, codes)
    thresholds = np.full(mu.shape, math.nan)
    thresholds[codes == 0] = 0.0
    thresholds[codes == 1] = b_even
    b_selected = codes == 2
    if np.any(b_selected):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ratio = mu * b_even / q
            candidate = np.where(
                np.isfinite(ratio),
                np.sqrt(np.where(np.isfinite(ratio), ratio, 1.0)),
                np.sqrt(mu * b_even) / np.sqrt(q),
            )
        candidate = np.where(mu == 0.0, 0.0, candidate)
        b_param = np.where(
            candidate <= 0.0, DEGENERATE_B_FRACTION * b_even, candidate
        )
        thresholds[b_selected] = b_param[b_selected]
    return codes, thresholds


@lru_cache(maxsize=32)
def gauss_legendre_rule(order: int = 96) -> tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre nodes and weights mapped to ``[0, 1]``, cached.

    A fixed-node rule of this order integrates the smooth threshold
    densities of the strategy layer to well below the 1e-9 agreement
    tolerance, and — unlike adaptive ``integrate.quad`` — evaluates the
    integrand as one vectorised call.
    """
    if order < 2:
        raise InvalidParameterError(f"quadrature order must be >= 2, got {order}")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    nodes = 0.5 * (nodes + 1.0)
    weights = 0.5 * weights
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


class PrefixSumSample:
    """An empirical stop sample prepared for prefix-sum moment queries.

    One ``np.sort`` and two (lazy) ``np.cumsum`` calls at construction;
    afterwards every ``partial_expectation`` / ``survival`` /
    ``expected_min`` query costs one binary search.  Queries accept
    scalars or arrays of thresholds.
    """

    __slots__ = ("values", "_prefix", "_prefix_sq")

    def __init__(self, stop_lengths, presorted: bool = False) -> None:
        y = np.asarray(stop_lengths, dtype=float).ravel()
        if y.size == 0:
            raise InvalidParameterError("cannot build a kernel sample from zero stops")
        values = y if presorted else np.sort(y)
        prefix = np.empty(y.size + 1)
        prefix[0] = 0.0
        np.cumsum(values, out=prefix[1:])
        # Single-pass validation off the prefix we need anyway: NaN/inf
        # propagate into the final cumsum entry, negatives sort first
        # (``presorted`` asserts ascending order).
        if values[0] < 0.0 or not math.isfinite(prefix[-1]):
            raise InvalidParameterError(
                "stop lengths must be non-negative and finite"
            )
        self.values = values
        self._prefix = prefix
        self._prefix_sq = None  # lazily built; only MOM-Rand's regime needs it

    @property
    def size(self) -> int:
        return self.values.size

    def mean(self) -> float:
        """Sample mean ``E[y]``."""
        return float(self._prefix[-1] / self.values.size)

    def _count_below(self, threshold) -> np.ndarray:
        """How many sample values are strictly below each threshold."""
        return self.values.searchsorted(threshold, side="left")

    def partial_expectation(self, threshold):
        """``E[y · 1{y < x}]`` — the mass-weighted short-stop mean (Eq. 10
        when ``x = B``).  Scalar in, scalar out; array in, array out."""
        idx = self._count_below(threshold)
        return self._prefix[idx] / self.values.size

    def square_prefix(self) -> np.ndarray:
        """The (lazily built) prefix sums of the squared values."""
        if self._prefix_sq is None:
            prefix_sq = np.empty(self.values.size + 1)
            prefix_sq[0] = 0.0
            np.cumsum(self.values * self.values, out=prefix_sq[1:])
            self._prefix_sq = prefix_sq
        return self._prefix_sq

    def partial_square_expectation(self, threshold):
        """``E[y² · 1{y < x}]`` from the squared prefix."""
        idx = self._count_below(threshold)
        return self.square_prefix()[idx] / self.values.size

    def survival(self, threshold):
        """``P{y >= x}`` — the closed event, matching Eq. (11)."""
        idx = self._count_below(threshold)
        return (self.values.size - idx) / self.values.size

    def expected_min(self, cap):
        """``E[min(y, c)] = E[y·1{y<c}] + c·P{y>=c}`` — the offline cost
        when ``c = B`` (Eq. 2)."""
        idx = self._count_below(cap)
        n = self.values.size
        return self._prefix[idx] / n + cap * (n - idx) / n

    def expected_min_square(self, cap):
        """``E[min(y, c)²]`` — MOM-Rand's second-moment term."""
        return self.partial_square_expectation(cap) + cap * cap * self.survival(cap)

    def deterministic_cost(self, threshold: float, break_even: float) -> float:
        """Mean expected cost of a fixed-threshold strategy over the
        sample: ``E[y·1{y<x}] + (x + B)·P{y>=x}`` (``E[y]`` for NEV)."""
        if math.isinf(threshold):
            return self.mean()
        idx = int(self._count_below(threshold))
        n = self.values.size
        return float(
            self._prefix[idx] / n + (threshold + break_even) * (n - idx) / n
        )

    def offline_cost(self, break_even: float) -> float:
        """Mean clairvoyant cost ``E[min(y, B)]`` (Eq. 2)."""
        return float(self.expected_min(break_even))


def strategy_cost(sample: PrefixSumSample, strategy: Strategy) -> float:
    """Mean per-stop expected online cost of ``strategy`` over ``sample``.

    Exact closed forms on the prefix sums for every strategy family of
    the paper (and b-Rand); arbitrary strategies fall back to one
    vectorised ``expected_cost_vec`` scan, which is still correct and
    never slower than the scalar path.
    """
    b = strategy.break_even
    if isinstance(strategy, ProposedOnline):
        return strategy_cost(sample, strategy.delegate)
    if isinstance(strategy, DeterministicThresholdStrategy):
        return sample.deterministic_cost(strategy.threshold, b)
    if isinstance(strategy, MOMRand):
        if strategy.uses_revised_pdf:
            # E[yc + yc²/(2B(e-2))] with yc = min(y, B).
            return float(
                sample.expected_min(b)
                + sample.expected_min_square(b) / (2.0 * b * (E - 2.0))
            )
        return E / (E - 1.0) * sample.offline_cost(b)
    if isinstance(strategy, NRand):
        # N-Rand's per-stop cost is exactly e/(e-1) times the offline cost.
        return E / (E - 1.0) * sample.offline_cost(b)
    if isinstance(strategy, BRand):
        # Cost is (1 + cB)·y below the truncation and continuous at it, so
        # E[cost] = (1 + cB)·E[min(y, beta)] with cB = 1/(e^{beta/B} - 1).
        cb = 1.0 / math.expm1(strategy.beta / b)
        return float((1.0 + cb) * sample.expected_min(strategy.beta))
    if isinstance(strategy, MixedStrategy):
        cost = 0.0
        for atom in strategy.atoms:
            cost += atom.mass * sample.deterministic_cost(atom.location, b)
        if strategy.continuous is not None and strategy.continuous_weight > 0.0:
            cost += strategy.continuous_weight * strategy_cost(
                sample, strategy.continuous
            )
        return cost
    return float(strategy.expected_cost_vec(sample.values).mean())


def empirical_cr_kernel(
    sample: PrefixSumSample, strategy: Strategy, break_even: float | None = None
) -> float:
    """Per-vehicle CR (the Figure 4 quantity) from prefix sums: mean
    expected online cost over mean offline cost."""
    b = break_even if break_even is not None else strategy.break_even
    offline = sample.offline_cost(b)
    if offline <= 0.0:
        raise DegenerateStatisticsError("offline cost is zero over the sample; CR undefined")
    return strategy_cost(sample, strategy) / offline


def bootstrap_resample_indices(
    rng: np.random.Generator, n_bootstrap: int, size: int
) -> np.ndarray:
    """The vectorised bootstrap's index matrix: one ``rng.integers`` call
    drawing ``(n_bootstrap, size)`` positions with replacement.

    RNG stream note: this consumes the generator exactly as
    ``n_bootstrap`` successive ``rng.integers(0, size, size=size)`` calls
    would (row-major fill), which is the loop reference the property
    tests replay — but it is a **different stream** from the pre-kernel
    implementation that used ``rng.choice`` per replicate.
    """
    if n_bootstrap <= 1:
        raise InvalidParameterError(f"n_bootstrap must be >= 2, got {n_bootstrap}")
    if size <= 0:
        raise InvalidParameterError(f"sample size must be >= 1, got {size}")
    return rng.integers(0, size, size=(n_bootstrap, size))


def bootstrap_cr_samples(
    strategy: Strategy,
    stop_lengths: np.ndarray,
    indices: np.ndarray,
    break_even: float | None = None,
) -> np.ndarray:
    """Bootstrap-resampled expected CRs, fully vectorised.

    The per-stop expected online cost depends only on the stop's value,
    so it is evaluated **once** on the unique values of the base sample
    and gathered per replicate; each replicate's online/offline totals
    are then one matrix sum.  Replicates whose offline cost is zero are
    dropped (mirroring the scalar loop).
    """
    y = np.asarray(stop_lengths, dtype=float).ravel()
    if y.size == 0:
        raise InvalidParameterError("cannot bootstrap zero stops")
    b = break_even if break_even is not None else strategy.break_even
    unique_values, inverse = np.unique(y, return_inverse=True)
    online_per_stop = strategy.expected_cost_vec(unique_values)[inverse]
    offline_per_stop = np.minimum(y, b)
    online = online_per_stop[indices].sum(axis=1)
    offline = offline_per_stop[indices].sum(axis=1)
    valid = offline > 0.0
    if not np.any(valid):
        raise InvalidParameterError("all bootstrap resamples had zero offline cost")
    return online[valid] / offline[valid]


def quantile_pair(values: np.ndarray, lower: float, upper: float) -> tuple[float, float]:
    """Two linear-interpolation quantiles from one sort.

    Bit-identical to ``np.quantile(values, q)`` with the default
    ``"linear"`` method (same floor index and same branch of the
    interpolation formula), but a single ``np.sort`` plus two scalar
    interpolations instead of two full quantile dispatches — the
    dominant fixed cost of a bootstrap interval once the resample sums
    themselves are vectorised.
    """
    y = np.asarray(values, dtype=float).ravel()
    if y.size == 0:
        raise InvalidParameterError("cannot take quantiles of an empty sample")
    for q in (lower, upper):
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantiles must lie in [0, 1], got {q!r}")
    ordered = np.sort(y)
    last = ordered.size - 1
    out = []
    for q in (lower, upper):
        position = q * last
        idx = int(position)
        frac = position - idx
        lo = ordered[idx]
        hi = ordered[idx + 1] if idx < last else ordered[idx]
        delta = hi - lo
        # np.quantile's lerp switches formulas at 0.5 for accuracy;
        # mirroring it keeps the pair bitwise equal to two np.quantile calls.
        out.append(float(hi - delta * (1.0 - frac)) if frac >= 0.5 else float(lo + delta * frac))
    return out[0], out[1]
