"""The two statistics at the heart of the constrained ski-rental problem.

Section 3 of the paper replaces full knowledge of the stop-length
distribution ``q(y)`` with two numbers:

* ``mu_B_minus`` (Eq. 10): the *mass-weighted* mean of short stops,
  ``∫₀ᴮ y q(y) dy``.  Note this is **not** the conditional expectation of
  short stops — the paper's footnote 2 points out that the conditional mean
  would be ``mu_B_minus / (1 - q_B_plus)`` and adopts the mass-weighted
  definition for convenience; we do the same.
* ``q_B_plus`` (Eq. 11): the probability of a long stop, ``P{y >= B}``.

Together they pin down the expected offline cost (Eq. 13):
``E[cost_offline] = mu_B_minus + q_B_plus * B`` — constant over the whole
ambiguity set Q, which is what makes the minimax problem tractable.

:class:`StopStatistics` is the immutable value object carrying the pair,
with constructors from raw stop samples and from analytic distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import TOLERANCE
from ..errors import InvalidParameterError
from .costs import validate_break_even

__all__ = ["StopStatistics", "mu_b_minus_from_samples", "q_b_plus_from_samples"]


def mu_b_minus_from_samples(stop_lengths: np.ndarray, break_even: float) -> float:
    """Empirical ``mu_B_minus`` (Eq. 10): mean of ``y * 1{y < B}``.

    Stops of exactly length ``B`` count as long stops (they contribute to
    ``q_B_plus``, not to ``mu_B_minus``), matching the offline rule in
    Eq. (2) where ``y >= B`` is a long stop.
    """
    b = validate_break_even(break_even)
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot compute statistics from zero stops")
    if np.any(~np.isfinite(y)) or np.any(y < 0.0):
        raise InvalidParameterError("stop lengths must be non-negative and finite")
    return float(np.where(y < b, y, 0.0).mean())


def q_b_plus_from_samples(stop_lengths: np.ndarray, break_even: float) -> float:
    """Empirical ``q_B_plus`` (Eq. 11): fraction of stops with ``y >= B``."""
    b = validate_break_even(break_even)
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot compute statistics from zero stops")
    if np.any(~np.isfinite(y)) or np.any(y < 0.0):
        raise InvalidParameterError("stop lengths must be non-negative and finite")
    return float((y >= b).mean())


@dataclass(frozen=True)
class StopStatistics:
    """The ``(mu_B_minus, q_B_plus)`` pair for a given break-even ``B``.

    Attributes
    ----------
    mu_b_minus:
        Mass-weighted mean of short stops (Eq. 10), in seconds.
    q_b_plus:
        Probability of a long stop (Eq. 11), in ``[0, 1]``.
    break_even:
        The break-even interval ``B`` the statistics were taken against.
    """

    mu_b_minus: float
    q_b_plus: float
    break_even: float

    def __post_init__(self) -> None:
        b = validate_break_even(self.break_even)
        mu = float(self.mu_b_minus)
        q = float(self.q_b_plus)
        if not np.isfinite(mu) or mu < 0.0:
            raise InvalidParameterError(f"mu_B_minus must be >= 0, got {mu!r}")
        if not np.isfinite(q) or not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"q_B_plus must lie in [0, 1], got {q!r}")
        # Feasibility: short stops are < B and carry total probability
        # (1 - q_B_plus), so mu_B_minus <= (1 - q_B_plus) * B.  Allow a small
        # tolerance for statistics estimated from finite samples.
        if mu > (1.0 - q) * b + TOLERANCE * max(1.0, b):
            raise InvalidParameterError(
                f"infeasible statistics: mu_B_minus={mu} exceeds "
                f"(1 - q_B_plus) * B = {(1.0 - q) * b} for B={b}"
            )
        object.__setattr__(self, "mu_b_minus", mu)
        object.__setattr__(self, "q_b_plus", q)
        object.__setattr__(self, "break_even", b)

    @classmethod
    def from_samples(cls, stop_lengths: np.ndarray, break_even: float) -> "StopStatistics":
        """Estimate the statistics from an array of observed stop lengths."""
        return cls(
            mu_b_minus=mu_b_minus_from_samples(stop_lengths, break_even),
            q_b_plus=q_b_plus_from_samples(stop_lengths, break_even),
            break_even=break_even,
        )

    @classmethod
    def from_distribution(cls, distribution, break_even: float) -> "StopStatistics":
        """Compute the statistics of an analytic stop-length distribution.

        ``distribution`` must implement the
        :class:`repro.distributions.base.StopLengthDistribution` interface
        (``partial_expectation`` and ``survival``).
        """
        b = validate_break_even(break_even)
        return cls(
            mu_b_minus=distribution.partial_expectation(b),
            q_b_plus=distribution.survival(b),
            break_even=b,
        )

    def as_dict(self) -> dict:
        """JSON-serializable form — used by service health snapshots.

        Floats survive a JSON round-trip bit-exactly (``repr`` encoding),
        so :meth:`from_dict` reconstructs the identical statistics.
        """
        return {
            "mu_b_minus": self.mu_b_minus,
            "q_b_plus": self.q_b_plus,
            "break_even": self.break_even,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StopStatistics":
        """Inverse of :meth:`as_dict` (revalidates the triple)."""
        return cls(
            mu_b_minus=float(payload["mu_b_minus"]),
            q_b_plus=float(payload["q_b_plus"]),
            break_even=float(payload["break_even"]),
        )

    @property
    def expected_offline_cost(self) -> float:
        """Expected cost of the offline optimum, Eq. (13): ``mu⁻ + q⁺ B``.

        Constant over every distribution compatible with the statistics,
        which is why the constrained minimax reduces to minimizing the
        expected online cost.
        """
        return self.mu_b_minus + self.q_b_plus * self.break_even

    @property
    def normalized_mu(self) -> float:
        """``mu_B_minus / B`` — the x-axis of Figures 1 and 2."""
        return self.mu_b_minus / self.break_even

    @property
    def short_stop_conditional_mean(self) -> float:
        """Conditional mean of short stops, ``mu⁻ / (1 - q⁺)`` (footnote 2).

        Returns 0 when every stop is long (``q_B_plus == 1``), in which case
        there are no short stops to average.
        """
        if self.q_b_plus >= 1.0:
            return 0.0
        return self.mu_b_minus / (1.0 - self.q_b_plus)

    def rescaled(self, break_even: float) -> "StopStatistics":
        """Return statistics *labelled* with a different ``B``.

        This does **not** recompute the integrals — it is only valid when
        the caller knows the distribution's mass between the two break-even
        values is zero (used by adversarial constructions in tests).  For
        real data, re-estimate with :meth:`from_samples`.
        """
        return StopStatistics(self.mu_b_minus, self.q_b_plus, break_even)
