"""Randomized baseline strategies: N-Rand and MOM-Rand.

* **N-Rand** (Karlin et al. 1990, Eq. 7): threshold pdf
  ``P(x) = e^{x/B} / (B (e-1))`` on ``[0, B]``.  Its defining property —
  verified in closed form below and exercised heavily by the test suite —
  is that the per-stop expected cost is *exactly* ``e/(e-1)`` times the
  offline cost for every stop length ``y``, which makes its expected CR
  ``e/(e-1) ≈ 1.582`` under any distribution.

* **MOM-Rand** (Khanafer et al. 2013, Eq. 9): when the first moment
  ``mu`` of the stop length is known and small
  (``mu <= 2(e-2)/(e-1) B ≈ 0.836 B``), the revised pdf
  ``P(x) = (e^{x/B} - 1) / (B (e-2))`` on ``[0, B]`` achieves
  ``CR' <= 1 + mu / (2B(e-2))``; otherwise MOM-Rand falls back to N-Rand.

Closed forms used (derived by integrating Eq. 3 against the pdfs; the
quadrature defaults in :class:`ContinuousRandomizedStrategy` are used as a
cross-check in the tests):

N-Rand, for ``0 <= y <= B``::

    CDF(y)                 = (e^{y/B} - 1) / (e - 1)
    ∫₀^y (x+B) P(x) dx     = y e^{y/B} / (e - 1)
    E_x[cost | y]          = e/(e-1) * y          (and e/(e-1) * B for y > B)

MOM-Rand (revised pdf), for ``0 <= y <= B``::

    CDF(y)                 = (B(e^{y/B} - 1) - y) / (B (e - 2))
    ∫₀^y (x+B) P(x) dx     = (B y e^{y/B} - y²/2 - B y) / (B (e - 2))
    E_x[cost | y]          = y + y² / (2B(e-2))   (and B(2e-3)/(2(e-2)) for y > B)
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import E, MOM_RAND_MU_THRESHOLD
from ..errors import InvalidParameterError
from .costs import validate_stop_length
from .strategy import ContinuousRandomizedStrategy

__all__ = ["NRand", "MOMRand", "mom_rand_uses_revised_pdf", "mom_rand_cr_prime_bound"]


class NRand(ContinuousRandomizedStrategy):
    """The classic randomized ski-rental strategy (Eq. 7)."""

    name = "N-Rand"

    def pdf(self, threshold: float) -> float:
        x = float(threshold)
        b = self.break_even
        if not 0.0 <= x <= b:
            return 0.0
        return math.exp(x / b) / (b * (E - 1.0))

    def cdf(self, threshold: float) -> float:
        x = float(threshold)
        b = self.break_even
        if x <= 0.0:
            return 0.0
        if x >= b:
            return 1.0
        return (math.exp(x / b) - 1.0) / (E - 1.0)

    def inverse_cdf(self, quantile: float) -> float:
        u = float(quantile)
        if not 0.0 <= u <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {quantile!r}")
        return self.break_even * math.log1p(u * (E - 1.0))

    def pdf_vec(self, thresholds: np.ndarray) -> np.ndarray:
        x = np.asarray(thresholds, dtype=float)
        b = self.break_even
        inside = (x >= 0.0) & (x <= b)
        return np.where(
            inside, np.exp(np.clip(x, 0.0, b) / b) / (b * (E - 1.0)), 0.0
        )

    def inverse_cdf_vec(self, quantiles: np.ndarray) -> np.ndarray:
        u = np.asarray(quantiles, dtype=float)
        if np.any(~np.isfinite(u)) or np.any((u < 0.0) | (u > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        return self.break_even * np.log1p(u * (E - 1.0))

    def partial_cost_integral(self, stop_length: float) -> float:
        y = min(float(stop_length), self.break_even)
        if y <= 0.0:
            return 0.0
        b = self.break_even
        return y * math.exp(y / b) / (E - 1.0)

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        b = self.break_even
        ratio = E / (E - 1.0)
        return ratio * min(y, b)

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        y = np.asarray(stop_lengths, dtype=float)
        return (E / (E - 1.0)) * np.minimum(y, self.break_even)

    def expected_cost_squared(self, stop_length: float) -> float:
        # ∫ (x+B)² e^{x/B} dx = B e^{x/B} (x² + B²), so
        # E[cost² | y] = [e^{y/B}(y² + B²) - B²]/(e-1) + y²(e - e^{y/B})/(e-1)
        # for y <= B, saturating at y = B beyond.
        y = validate_stop_length(stop_length)
        b = self.break_even
        yc = min(y, b)
        exp_term = math.exp(yc / b)
        restart_part = (exp_term * (yc * yc + b * b) - b * b) / (E - 1.0)
        if y <= b:
            survive_part = y * y * (E - exp_term) / (E - 1.0)
        else:
            survive_part = 0.0
        return restart_part + survive_part

    def mean_threshold(self) -> float:
        # E[x] = ∫₀^B x e^{x/B}/(B(e-1)) dx = B (B e - B(e-1)) ... in closed
        # form: ∫ x e^{x/B} dx = B x e^{x/B} - B² e^{x/B}, so the mean is
        # (B²e - B²e + B²) / (B(e-1)) = B / (e-1).
        return self.break_even / (E - 1.0)


def mom_rand_uses_revised_pdf(mean_stop_length: float, break_even: float) -> bool:
    """True when MOM-Rand's first-moment information is binding
    (``mu <= 2(e-2)/(e-1) B``) and the revised pdf (Eq. 9) applies."""
    if mean_stop_length < 0.0:
        raise InvalidParameterError(f"mean stop length must be >= 0, got {mean_stop_length!r}")
    return mean_stop_length <= MOM_RAND_MU_THRESHOLD * break_even


def mom_rand_cr_prime_bound(mean_stop_length: float, break_even: float) -> float:
    """The CR' guarantee of MOM-Rand: ``1 + mu/(2B(e-2))`` in the revised
    regime, ``e/(e-1)`` otherwise."""
    if mom_rand_uses_revised_pdf(mean_stop_length, break_even):
        return 1.0 + mean_stop_length / (2.0 * break_even * (E - 2.0))
    return E / (E - 1.0)


class MOMRand(ContinuousRandomizedStrategy):
    """MOM-Rand: first-moment-aware randomized strategy (Khanafer 2013).

    Parameters
    ----------
    break_even:
        Break-even interval ``B``.
    mean_stop_length:
        The known first moment ``mu`` of the stop-length distribution.
        When ``mu > 0.836 B`` the strategy degenerates to N-Rand (Eq. 9's
        precondition fails) and :attr:`uses_revised_pdf` is False.
    """

    name = "MOM-Rand"

    def __init__(self, break_even: float, mean_stop_length: float) -> None:
        super().__init__(break_even)
        mu = float(mean_stop_length)
        if not np.isfinite(mu) or mu < 0.0:
            raise InvalidParameterError(
                f"mean stop length must be a non-negative finite number, got {mean_stop_length!r}"
            )
        self.mean_stop_length = mu
        self.uses_revised_pdf = mom_rand_uses_revised_pdf(mu, self.break_even)
        self._fallback = None if self.uses_revised_pdf else NRand(self.break_even)

    # -- revised-pdf closed forms ------------------------------------------

    def pdf(self, threshold: float) -> float:
        if self._fallback is not None:
            return self._fallback.pdf(threshold)
        x = float(threshold)
        b = self.break_even
        if not 0.0 <= x <= b:
            return 0.0
        return (math.exp(x / b) - 1.0) / (b * (E - 2.0))

    def pdf_vec(self, thresholds: np.ndarray) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.pdf_vec(thresholds)
        x = np.asarray(thresholds, dtype=float)
        b = self.break_even
        inside = (x >= 0.0) & (x <= b)
        return np.where(
            inside, np.expm1(np.clip(x, 0.0, b) / b) / (b * (E - 2.0)), 0.0
        )

    def inverse_cdf_vec(self, quantiles: np.ndarray) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.inverse_cdf_vec(quantiles)
        return super().inverse_cdf_vec(quantiles)

    def cdf(self, threshold: float) -> float:
        if self._fallback is not None:
            return self._fallback.cdf(threshold)
        x = float(threshold)
        b = self.break_even
        if x <= 0.0:
            return 0.0
        if x >= b:
            return 1.0
        return (b * (math.exp(x / b) - 1.0) - x) / (b * (E - 2.0))

    def partial_cost_integral(self, stop_length: float) -> float:
        if self._fallback is not None:
            return self._fallback.partial_cost_integral(stop_length)
        y = min(float(stop_length), self.break_even)
        if y <= 0.0:
            return 0.0
        b = self.break_even
        return (b * y * math.exp(y / b) - 0.5 * y * y - b * y) / (b * (E - 2.0))

    def expected_cost(self, stop_length: float) -> float:
        if self._fallback is not None:
            return self._fallback.expected_cost(stop_length)
        y = validate_stop_length(stop_length)
        b = self.break_even
        yc = min(y, b)
        return yc + yc * yc / (2.0 * b * (E - 2.0))

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.expected_cost_vec(stop_lengths)
        y = np.asarray(stop_lengths, dtype=float)
        b = self.break_even
        yc = np.minimum(y, b)
        return yc + yc * yc / (2.0 * b * (E - 2.0))

    def draw_threshold(self, rng: np.random.Generator) -> float:
        if self._fallback is not None:
            return self._fallback.draw_threshold(rng)
        return super().draw_threshold(rng)

    def cr_prime_bound(self) -> float:
        """The strategy's CR' guarantee for its configured ``mu``."""
        return mom_rand_cr_prime_bound(self.mean_stop_length, self.break_even)
