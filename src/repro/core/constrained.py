"""The constrained ski-rental problem and the paper's proposed algorithm.

Section 4 shows that the minimax problem

.. math::

    \\min_{P \\in \\mathcal{P}} \\max_{q \\in \\mathcal{Q}} J(P, q)

over the ambiguity set Q of stop-length distributions with given
``mu_B_minus`` and ``q_B_plus`` reduces — via an augmented Lagrangian and a
linear program in the atom masses ``(α, β, γ)`` of the generic strategy
form (Eq. 18) — to picking the cheapest of four *vertex* strategies:

=========  =============================================  =================
Vertex     Worst-case expected cost over Q                Strategy
=========  =============================================  =================
(0,0,0)    ``e/(e-1) (μ⁻ + q⁺B)``                          N-Rand
(1,0,0)    ``B``                                           TOI
(0,1,0)    ``μ⁻ + 2 q⁺ B``                                 DET
(0,0,1)    ``(√μ⁻ + √(q⁺B))²`` (iff Eq. 36 holds)          b-DET at ``b*``
=========  =============================================  =================

Because the expected offline cost is the *constant* ``μ⁻ + q⁺B`` over all
of Q (Eq. 13), minimizing the worst-case expected cost is the same as
minimizing the worst-case expected competitive ratio, and the optimal
worst-case CR is simply ``min(vertex costs) / (μ⁻ + q⁺B)``.

This module implements the vertex evaluation, the selection rule, and
:class:`ProposedOnline` — a drop-in :class:`~repro.core.strategy.Strategy`
that instantiates the winning vertex for given statistics.  The explicit
LP of Eq. (32)/(33) lives in :mod:`repro.core.lp` and is used as a
cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import E
from ..errors import DegenerateStatisticsError, InvalidParameterError
from .deterministic import (
    BDet,
    Deterministic,
    TurnOffImmediately,
    b_det_condition_holds,
    b_det_worst_case_cost,
    optimal_b,
)
from .randomized import NRand
from .stats import StopStatistics
from .strategy import Strategy

__all__ = [
    "VertexEvaluation",
    "Selection",
    "ConstrainedSkiRentalSolver",
    "ProposedOnline",
    "worst_case_cost_nrand",
    "worst_case_cost_toi",
    "worst_case_cost_det",
    "worst_case_cost_bdet",
]

#: Fraction of B used as the b-DET threshold in the degenerate
#: ``mu_B_minus == 0`` corner, where the optimal ``b*`` collapses to 0 but
#: the BDet strategy requires a strictly positive threshold.  The cost of
#: b-DET at threshold ``b`` is ``(b + B) q⁺`` there, so any tiny positive
#: value approaches the Eq. (35) infimum ``q⁺ B``.
DEGENERATE_B_FRACTION = 1e-9

#: Fixed tie-breaking order when several vertices share the minimal
#: worst-case cost (e.g. on region boundaries of Figure 1(a)).  Simpler /
#: deterministic strategies are preferred.
_TIE_ORDER = {"TOI": 0, "DET": 1, "b-DET": 2, "N-Rand": 3}


def worst_case_cost_nrand(stats: StopStatistics) -> float:
    """Worst-case expected cost of N-Rand over Q: ``e/(e-1) (μ⁻ + q⁺B)``.

    N-Rand's per-stop expected cost is exactly ``e/(e-1)`` times the
    offline cost, so its expected cost is the same for *every* q in Q.
    """
    return E / (E - 1.0) * stats.expected_offline_cost


def worst_case_cost_toi(stats: StopStatistics) -> float:
    """Worst-case expected cost of TOI over Q: the constant ``B``."""
    return stats.break_even


def worst_case_cost_det(stats: StopStatistics) -> float:
    """Worst-case expected cost of DET over Q (Eq. 14): ``μ⁻ + 2 q⁺ B``.

    Like N-Rand, DET's expected cost is constant over Q: short stops cost
    their own length, long stops cost exactly ``2B``.
    """
    return stats.mu_b_minus + 2.0 * stats.q_b_plus * stats.break_even


def worst_case_cost_bdet(stats: StopStatistics) -> float:
    """Worst-case expected cost of b-DET at the optimal ``b*`` (Eq. 35),
    or ``+inf`` when condition (36) fails and b-DET is inadmissible.

    The degenerate corner ``mu_B_minus == 0`` (all short stops have zero
    length) is admissible with infimum cost ``q⁺ B`` — Eq. (35) already
    evaluates to that.
    """
    if stats.q_b_plus <= 0.0:
        return math.inf
    if stats.mu_b_minus == 0.0 and stats.q_b_plus < 1.0:
        return stats.q_b_plus * stats.break_even
    return b_det_worst_case_cost(stats)


@dataclass(frozen=True)
class VertexEvaluation:
    """One vertex of the LP: its name, worst-case expected cost over Q,
    worst-case expected CR, and any derived parameters (``b*`` for b-DET)."""

    name: str
    worst_case_cost: float
    worst_case_cr: float
    parameters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Selection:
    """Outcome of the constrained solver for one statistics pair."""

    stats: StopStatistics
    chosen: VertexEvaluation
    vertices: tuple[VertexEvaluation, ...]

    @property
    def name(self) -> str:
        return self.chosen.name

    @property
    def worst_case_cr(self) -> float:
        return self.chosen.worst_case_cr

    def build_strategy(self) -> Strategy:
        """Instantiate the winning vertex as an executable strategy."""
        return _build_vertex_strategy(self.chosen, self.stats)


def _build_vertex_strategy(vertex: VertexEvaluation, stats: StopStatistics) -> Strategy:
    if vertex.name == "N-Rand":
        return NRand(stats.break_even)
    if vertex.name == "TOI":
        return TurnOffImmediately(stats.break_even)
    if vertex.name == "DET":
        return Deterministic(stats.break_even)
    if vertex.name == "b-DET":
        return BDet(stats.break_even, vertex.parameters["b"])
    raise InvalidParameterError(f"unknown vertex name {vertex.name!r}")


class ConstrainedSkiRentalSolver:
    """Evaluates the four LP vertices for a statistics pair and selects
    the minimizer of the worst-case expected cost (equivalently, of the
    worst-case expected CR)."""

    def __init__(self, stats: StopStatistics) -> None:
        if stats.expected_offline_cost <= 0.0:
            raise DegenerateStatisticsError(
                "degenerate statistics: expected offline cost is zero "
                "(every stop has zero length); competitive ratios are undefined"
            )
        self.stats = stats

    def evaluate_vertices(self) -> tuple[VertexEvaluation, ...]:
        """Worst-case cost and CR of each of the four vertex strategies."""
        stats = self.stats
        offline = stats.expected_offline_cost
        evaluations = []
        for name, cost in (
            ("TOI", worst_case_cost_toi(stats)),
            ("DET", worst_case_cost_det(stats)),
            ("b-DET", worst_case_cost_bdet(stats)),
            ("N-Rand", worst_case_cost_nrand(stats)),
        ):
            parameters: dict = {}
            if name == "b-DET" and math.isfinite(cost):
                if stats.mu_b_minus == 0.0:
                    candidate = 0.0
                else:
                    candidate = optimal_b(stats)
                if candidate <= 0.0:  # mu- == 0 or subnormal underflow
                    parameters["b"] = DEGENERATE_B_FRACTION * stats.break_even
                    parameters["degenerate"] = True
                else:
                    parameters["b"] = candidate
            evaluations.append(
                VertexEvaluation(
                    name=name,
                    worst_case_cost=cost,
                    worst_case_cr=cost / offline,
                    parameters=parameters,
                )
            )
        return tuple(evaluations)

    def select(self) -> Selection:
        """Pick the vertex with the smallest worst-case expected cost.

        Ties (region boundaries of Figure 1(a)) are broken by the fixed
        order TOI < DET < b-DET < N-Rand, preferring simpler strategies.
        """
        vertices = self.evaluate_vertices()
        chosen = min(
            vertices,
            key=lambda v: (v.worst_case_cost, _TIE_ORDER[v.name]),
        )
        return Selection(stats=self.stats, chosen=chosen, vertices=vertices)


class ProposedOnline(Strategy):
    """The paper's proposed online algorithm, as an executable strategy.

    Given ``(mu_B_minus, q_B_plus)`` it solves the constrained ski-rental
    problem once at construction time and then behaves exactly like the
    winning vertex strategy.  Its guaranteed worst-case expected CR over
    the ambiguity set Q is :attr:`worst_case_cr`.
    """

    name = "Proposed"

    def __init__(self, stats: StopStatistics) -> None:
        super().__init__(stats.break_even)
        self.stats = stats
        self.selection = ConstrainedSkiRentalSolver(stats).select()
        self._delegate = self.selection.build_strategy()

    @classmethod
    def from_samples(cls, stop_lengths: np.ndarray, break_even: float) -> "ProposedOnline":
        """Estimate the statistics from observed stops and build the
        proposed strategy for them — the paper's end-to-end use case."""
        return cls(StopStatistics.from_samples(stop_lengths, break_even))

    @property
    def selected_name(self) -> str:
        """Name of the vertex strategy the selector chose."""
        return self.selection.name

    @property
    def worst_case_cr(self) -> float:
        """Guaranteed worst-case expected CR over Q (e.g. Eq. 38 when the
        winner is b-DET)."""
        return self.selection.worst_case_cr

    @property
    def delegate(self) -> Strategy:
        """The concrete vertex strategy being executed."""
        return self._delegate

    def draw_threshold(self, rng: np.random.Generator) -> float:
        return self._delegate.draw_threshold(rng)

    def draw_thresholds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return self._delegate.draw_thresholds(count, rng)

    def expected_cost(self, stop_length: float) -> float:
        return self._delegate.expected_cost(stop_length)

    def expected_cost_squared(self, stop_length: float) -> float:
        return self._delegate.expected_cost_squared(stop_length)

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        return self._delegate.expected_cost_vec(stop_lengths)
