"""Numeric minimax games: independent validation of the paper's theorems.

The paper derives its optimal strategies analytically (Lagrangian → ODE →
LP).  This module re-derives the *game values* numerically, with no
analytic shortcuts: discretize the player's threshold space and the
adversary's stop-length space, and solve the resulting matrix game by LP
duality.  Two games are implemented:

:func:`solve_unconstrained_game`
    ``min_P max_q  J(P, q) / E_q[offline]`` with q ranging over *all*
    distributions.  Via the Charnes-Cooper transform (normalize the
    adversary by expected offline cost) the inner max becomes an LP, and
    the game value must converge to the Karlin et al. bound
    ``e/(e-1)`` — with the optimal ``P`` converging to the N-Rand density
    of Eq. (7).

:func:`solve_constrained_game`
    the paper's game (Eq. 16): q constrained to ``Q(mu_B_minus,
    q_B_plus)``.  The expected offline cost is then the constant
    ``μ⁻ + q⁺B``, the objective is linear in q, and the game value must
    match :class:`~repro.core.constrained.ConstrainedSkiRentalSolver`'s
    optimal worst-case CR — including in the b-DET region, numerically
    confirming Eqs. (34)-(38).

Both solve a single LP: dualize the adversary's inner maximization and
minimize the dual objective jointly over the player's mixed strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..errors import DegenerateStatisticsError, InvalidParameterError, SolverError
from .costs import validate_break_even
from .stats import StopStatistics

__all__ = [
    "GameSolution",
    "solve_unconstrained_game",
    "solve_constrained_game",
    "solve_first_moment_game",
]


@dataclass(frozen=True)
class GameSolution:
    """Solution of a discretized ski-rental minimax game."""

    value: float
    thresholds: np.ndarray
    player_distribution: np.ndarray

    def mean_threshold(self) -> float:
        return float((self.thresholds * self.player_distribution).sum())


def _grids(break_even: float, grid_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Player thresholds on [0, B]; adversary stops interleaved so every
    threshold has a stop just below it (the adversary's best responses
    live there) plus one long stop past B."""
    if grid_size < 8:
        raise InvalidParameterError(f"grid_size must be >= 8, got {grid_size}")
    x_grid = np.linspace(0.0, break_even, grid_size)
    epsilon = break_even / (grid_size * 50.0)
    just_below = np.clip(x_grid[1:] - epsilon, 0.0, None)
    y_grid = np.unique(np.concatenate([x_grid, just_below, [2.0 * break_even]]))
    return x_grid, y_grid


def _cost_matrix(x_grid: np.ndarray, y_grid: np.ndarray, break_even: float) -> np.ndarray:
    """``C[i, j] = cost_online(x_i, y_j)`` per Eq. (3)."""
    x = x_grid[:, None]
    y = y_grid[None, :]
    return np.where(y < x, y, x + break_even)


def _solve_dual_lp(
    cost: np.ndarray,
    adversary_rows: np.ndarray,
    adversary_rhs: np.ndarray,
    x_grid: np.ndarray,
) -> GameSolution:
    """Jointly minimize over (player P, dual multipliers λ).

    Inner problem: ``max_q (Pᵀ C) q`` s.t. ``A q = b, q >= 0`` has dual
    ``min_λ bᵀ λ`` s.t. ``Aᵀ λ >= Cᵀ P``.  Embedding the dual yields one
    LP over ``[P, λ]`` with objective ``bᵀ λ``, the simplex constraint on
    P, and ``Cᵀ P - Aᵀ λ <= 0`` per adversary column.
    """
    n = cost.shape[0]
    k = adversary_rows.shape[0]
    c_vec = np.concatenate([np.zeros(n), adversary_rhs])
    # Cᵀ P - Aᵀ λ <= 0.
    a_ub = np.hstack([cost.T, -adversary_rows.T])
    b_ub = np.zeros(cost.shape[1])
    a_eq = np.concatenate([np.ones(n), np.zeros(k)])[None, :]
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * n + [(None, None)] * k
    result = optimize.linprog(
        c=c_vec,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"minimax LP failed: {result.message}")
    player = np.clip(result.x[:n], 0.0, None)
    total = player.sum()
    if total <= 0.0:
        raise SolverError("minimax LP returned an empty player distribution")
    return GameSolution(
        value=float(result.fun),
        thresholds=x_grid,
        player_distribution=player / total,
    )


def solve_unconstrained_game(break_even: float, grid_size: int = 120) -> GameSolution:
    """The classic game: adversary unconstrained, payoff = expected CR.

    Charnes-Cooper: substitute ``q' = q / E_q[offline]``; the adversary's
    feasible set becomes ``{q' >= 0 : Σ_j offline(y_j) q'_j = 1}`` and the
    payoff ``(Pᵀ C) q'`` is linear.  Game value → e/(e-1) as the grid
    refines.
    """
    b = validate_break_even(break_even)
    x_grid, y_grid = _grids(b, grid_size)
    cost = _cost_matrix(x_grid, y_grid, b)
    offline = np.minimum(y_grid, b)
    # Guard: a zero-length stop has zero offline cost and would make the
    # transform unbounded only if its online cost were positive; for
    # y = 0 the online cost is x + B > 0 when x = 0... actually for
    # y = 0 < x every strategy pays 0 except thresholds x = 0.  Dropping
    # y = 0 is safe: it never helps the adversary in ratio terms beyond
    # stops just below tiny thresholds, which the grid retains.
    keep = offline > 0.0
    return _solve_dual_lp(
        cost[:, keep],
        adversary_rows=offline[keep][None, :],
        adversary_rhs=np.array([1.0]),
        x_grid=x_grid,
    )


def solve_first_moment_game(
    break_even: float,
    mean_stop_length: float,
    grid_size: int = 120,
    tail_factor: float = 8.0,
) -> GameSolution:
    """Appendix B's claim, checked numerically: knowing only the *first
    moment* ``E[y] = mu`` does not improve on N-Rand.

    The adversary ranges over distributions with the given mean; the
    payoff is the expected CR (Charnes-Cooper normalized by offline
    cost, with the mean constraint transformed alongside).  The game
    value should stay at ``e/(e-1)`` for any ``mu`` large enough that
    the mean constraint is non-binding on the worst case — which is the
    paper's point: mass beyond ``B`` can absorb any mean, so the first
    moment carries no useful information.

    The adversary's stop grid extends to ``tail_factor * B`` so it has
    room to satisfy large means.
    """
    b = validate_break_even(break_even)
    mu = float(mean_stop_length)
    if not 0.0 < mu <= tail_factor * b:
        raise InvalidParameterError(
            f"mean must lie in (0, {tail_factor * b}], got {mean_stop_length!r}"
        )
    x_grid, y_grid = _grids(b, grid_size)
    # Extend the adversary's support deep past B.
    tail = np.linspace(1.5 * b, tail_factor * b, max(8, grid_size // 8))
    y_grid = np.unique(np.concatenate([y_grid, tail]))
    cost = _cost_matrix(x_grid, y_grid, b)
    offline = np.minimum(y_grid, b)
    keep = offline > 0.0
    y_grid, offline, cost = y_grid[keep], offline[keep], cost[:, keep]
    # Charnes-Cooper: q' = q / (off^T q); the normalization row becomes
    # off^T q' = 1 and the mean constraint E[y] = mu becomes
    # (y - mu * 1)^T q = 0, which is invariant under the scaling.
    rows = np.vstack([offline, y_grid - mu])
    rhs = np.array([1.0, 0.0])
    return _solve_dual_lp(cost, rows, rhs, x_grid)


def solve_constrained_game(stats: StopStatistics, grid_size: int = 120) -> GameSolution:
    """The paper's constrained game (Eq. 16), returning the CR value.

    The adversary is constrained to ``Q(mu_B_minus, q_B_plus)``; since the
    expected offline cost is constant over Q, the game value divided by
    that constant is the optimal worst-case expected CR, which must match
    the analytic vertex selection.
    """
    if stats.expected_offline_cost <= 0.0:
        raise DegenerateStatisticsError("degenerate statistics: offline cost is zero")
    b = stats.break_even
    x_grid, y_grid = _grids(b, grid_size)
    cost = _cost_matrix(x_grid, y_grid, b)
    short = y_grid < b
    long_mask = ~short
    # Constraints on q: short-stop mass-weighted mean, long mass, total.
    rows = np.vstack(
        [
            np.where(short, y_grid, 0.0),  # Σ y q over short = mu-
            long_mask.astype(float),       # Σ q over long = q+
            np.ones_like(y_grid),          # Σ q = 1
        ]
    )
    rhs = np.array([stats.mu_b_minus, stats.q_b_plus, 1.0])
    solution = _solve_dual_lp(cost, rows, rhs, x_grid)
    return GameSolution(
        value=solution.value / stats.expected_offline_cost,
        thresholds=solution.thresholds,
        player_distribution=solution.player_distribution,
    )
