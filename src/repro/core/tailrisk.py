"""Tail-risk-controlled randomized ski rental: the CVaR-α knob.

N-Rand optimizes the *expected* competitive ratio, but a fleet operator
often cares about the worst-percentile per-stop cost — a strategy that
is cheap on average yet occasionally pays near ``y + B`` on a short stop
is a hard sell.  Following the CVaR-constrained ski-rental line of work
(Cui & Dinitz, see PAPERS.md), :class:`TailRiskRand` solves, within the
mixture family

.. math::

    P_\\rho = \\rho \\cdot \\text{N-Rand} + (1 - \\rho)\\,\\delta_B,

the program *minimize worst-case expected CR subject to a CVaR cap*:

.. math::

    \\sup_y \\frac{\\mathrm{CVaR}_\\alpha[\\text{cost}(x, y)]}{\\text{opt}(y)}
    \\le \\tau .

Conventions: ``α ∈ (0, 1]`` is the **tail fraction** — ``CVaR_α`` is the
mean of the worst ``α``-fraction of per-stop cost draws, so ``α = 1`` is
the plain mean and small ``α`` probes deep tails.  ``τ = cap`` is the
tail-cost multiple of the offline optimum the operator tolerates.

Closed forms (derived by integrating Eq. 3 against the mixture; the
test suite cross-checks them by quadrature and empirical tail means):

* restart mass at stop length ``y < B``: ``m(y) = ρ (e^{y/B}-1)/(e-1)``;
* when ``m(y) ≤ α`` (the binding regime — short stops, where only part
  of the tail restarts)::

      CVaR_α(y) = y · (1 + ρ / (α (e - 1)))

  so the constraint pins ``ρ* = min(1, α (τ - 1)(e - 1))``;
* the supremum of ``CVaR_α(y)/opt(y)`` over all ``y`` is attained in
  that regime (the ``m(y) > α`` branch and the ``y ≥ B`` branch are both
  verified smaller — numerically in the tests, and the boundary values
  agree in closed form), so the cap binds exactly at ``ρ*``;
* worst-case **expected** CR of the mixture is
  ``2 - ρ (2 - e/(e-1))`` — decreasing in ``ρ``, which makes the
  maximal feasible ``ρ*`` family-optimal.

Feasibility: the atom at ``B`` pays ``2B`` on any stop ``y ≥ B``, so
whenever ``ρ* < 1`` the family needs ``τ ≥ 2``.  Caps below 2 are
feasible only when ``α (τ - 1)(e - 1) ≥ 1`` — then ``ρ* = 1`` and the
strategy *is* N-Rand, whose ``CVaR_α`` already meets the cap.  In
particular as ``α → 1`` (with ``τ ≥ 2``) the constraint goes slack at
``α ≥ 1/((τ-1)(e-1)) < 1`` and :class:`TailRiskRand` degenerates to
N-Rand *exactly* — the limit the tests pin to 1e-9.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import E
from ..errors import InvalidParameterError
from .costs import validate_break_even, validate_stop_length
from .randomized import NRand
from .strategy import Strategy

__all__ = ["TailRiskRand", "max_nrand_weight", "tail_cap_feasible"]


def tail_cap_feasible(alpha: float, cap: float) -> bool:
    """Whether the (α, τ) pair is achievable by the N-Rand/DET mixture.

    ``τ ≥ 2`` always is (the atom's worst multiple); ``τ < 2`` only when
    the constraint is slack enough that pure N-Rand already satisfies it
    (``α (τ - 1)(e - 1) ≥ 1``).
    """
    return cap >= 2.0 or alpha * (cap - 1.0) * (E - 1.0) >= 1.0


def max_nrand_weight(alpha: float, cap: float) -> float:
    """The largest N-Rand weight honoring the tail cap:
    ``ρ* = min(1, α (τ - 1)(e - 1))`` (see module docstring)."""
    if not 0.0 < alpha <= 1.0:
        raise InvalidParameterError(f"cvar alpha must lie in (0, 1], got {alpha!r}")
    if not math.isfinite(cap) or cap <= 1.0:
        raise InvalidParameterError(
            f"tail-cost cap must be a finite multiple > 1, got {cap!r}"
        )
    if not tail_cap_feasible(alpha, cap):
        raise InvalidParameterError(
            f"tail cap {cap!r} at alpha {alpha!r} is infeasible: the "
            "break-even atom pays 2*OPT on long stops, so caps below 2 "
            "require alpha*(cap-1)*(e-1) >= 1"
        )
    return min(1.0, alpha * (cap - 1.0) * (E - 1.0))


class TailRiskRand(Strategy):
    """CVaR-α-constrained randomized threshold strategy (module docstring).

    Parameters
    ----------
    break_even:
        Break-even interval ``B``.
    alpha:
        Tail fraction of the CVaR constraint, in ``(0, 1]``.
    cap:
        Tail-cost cap ``τ``: ``CVaR_α`` may not exceed ``τ · opt(y)``
        for any stop length ``y``.  Default 2.0 — DET's unconditional
        worst case, the natural operator ceiling.
    """

    name = "CVaR-Rand"

    def __init__(self, break_even: float, alpha: float, cap: float = 2.0) -> None:
        super().__init__(break_even)
        self.alpha = float(alpha)
        self.cap = float(cap)
        #: Weight on the N-Rand component; ``1 - nrand_weight`` sits in
        #: the atom at ``B`` (the DET vertex).
        self.nrand_weight = max_nrand_weight(self.alpha, self.cap)
        self._nrand = NRand(self.break_even)

    # -- distribution ------------------------------------------------------

    @property
    def atom_weight(self) -> float:
        """Mass of the ``δ_B`` atom."""
        return 1.0 - self.nrand_weight

    def pdf(self, threshold: float) -> float:
        """Density of the continuous component (the atom is reported
        separately via :attr:`atom_weight`)."""
        return self.nrand_weight * self._nrand.pdf(threshold)

    def cdf(self, threshold: float) -> float:
        x = float(threshold)
        if x >= self.break_even:
            return 1.0
        return self.nrand_weight * self._nrand.cdf(x)

    def inverse_cdf(self, quantile: float) -> float:
        u = float(quantile)
        if not 0.0 <= u <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {quantile!r}")
        rho = self.nrand_weight
        if u < rho:
            return self.break_even * math.log1p((u / rho) * (E - 1.0))
        return self.break_even

    def draw_threshold(self, rng: np.random.Generator) -> float:
        # One uniform per draw regardless of which component it lands
        # in, so the RNG stream advances exactly like N-Rand's — the
        # serving layer's batched/scalar stream parity carries over.
        return self.inverse_cdf(float(rng.uniform()))

    # -- moments -----------------------------------------------------------

    def expected_cost(self, stop_length: float) -> float:
        y = validate_stop_length(stop_length)
        b = self.break_even
        rho = self.nrand_weight
        det_cost = y if y < b else 2.0 * b
        return rho * self._nrand.expected_cost(y) + (1.0 - rho) * det_cost

    def expected_cost_vec(self, stop_lengths: np.ndarray) -> np.ndarray:
        y = np.asarray(stop_lengths, dtype=float)
        b = self.break_even
        rho = self.nrand_weight
        det_cost = np.where(y < b, y, 2.0 * b)
        return rho * self._nrand.expected_cost_vec(y) + (1.0 - rho) * det_cost

    @property
    def worst_case_expected_cr(self) -> float:
        """``sup_y E[cost]/opt = 2 - ρ (2 - e/(e-1))`` — attained on
        long stops; equals ``e/(e-1)`` at ``ρ = 1`` and DET's 2 at 0."""
        return 2.0 - self.nrand_weight * (2.0 - E / (E - 1.0))

    # -- the tail ----------------------------------------------------------

    def cvar_cost(self, stop_length: float) -> float:
        """Closed-form ``CVaR_α`` of the per-stop cost at stop length
        ``y`` (mean of the worst ``α``-fraction of cost draws).

        Piecewise over the three regimes of the module docstring; every
        branch is exercised and quadrature-checked by the tests.
        """
        y = validate_stop_length(stop_length)
        if y == 0.0:
            return 0.0
        b = self.break_even
        rho = self.nrand_weight
        alpha = self.alpha
        if y >= b:
            # Every threshold restarts; the tail is the atom (cost 2B)
            # plus, if the atom is thinner than α, the top of the
            # continuous component.
            spill = alpha - (1.0 - rho)
            if spill <= 0.0:
                return 2.0 * b
            # F_N(x*) = 1 - spill/ρ  ⇒  e^{x*/B} = e - (spill/ρ)(e-1)
            exp_star = E - (spill / rho) * (E - 1.0)
            x_star = b * math.log(exp_star)
            continuous = rho * (b * E - x_star * exp_star) / (E - 1.0)
            return ((1.0 - rho) * 2.0 * b + continuous) / alpha
        restart_mass = rho * (math.expm1(y / b)) / (E - 1.0)
        if restart_mass <= alpha:
            # Binding regime: part restart tail, rest pays the idle y.
            return y * (1.0 + rho / (alpha * (E - 1.0)))
        # Deep-tail regime: the worst α-fraction restarts entirely,
        # thresholds in [x*, y] with ρ(F_N(y) - F_N(x*)) = α.
        exp_star = math.exp(y / b) - alpha * (E - 1.0) / rho
        x_star = b * math.log(exp_star)
        return rho * (y * math.exp(y / b) - x_star * exp_star) / (alpha * (E - 1.0))

    def cvar_ratio(self, stop_length: float) -> float:
        """``CVaR_α(y) / opt(y)`` — the quantity the cap bounds."""
        y = validate_stop_length(stop_length)
        if y == 0.0:
            return 1.0
        return self.cvar_cost(y) / min(y, self.break_even)
