"""Average-case analysis of deterministic thresholds (Fujiwara & Iwama).

The paper's related work [10] analyzes ski rental when the stop-length
distribution ``q(y)`` is *fully* known, minimizing the expected cost over
deterministic thresholds.  This module implements that analysis — both to
serve as an oracle upper baseline ("how much does knowing only
``(mu_B_minus, q_B_plus)`` cost versus knowing everything?") and to
reproduce [10]'s striking exponential-distribution result:

For exponential stops with mean ``m``, the expected cost of idling until
``x`` is ``m + (B - m) e^{-x/m}`` — *monotone* in ``x`` — so the
average-case optimum is bang-bang: never turn off when ``m < B``, turn
off immediately when ``m > B``.  Memorylessness kills every interior
threshold; heavy-tailed real traffic does not behave this way, which is
precisely the paper's motivation for distribution-robust design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..distributions.base import StopLengthDistribution
from ..errors import InvalidParameterError
from .analysis import expected_online_cost
from .costs import validate_break_even
from .strategy import DeterministicThresholdStrategy

__all__ = [
    "expected_cost_of_threshold",
    "OptimalThreshold",
    "optimal_threshold",
    "exponential_expected_cost",
    "exponential_optimal_threshold",
]


def expected_cost_of_threshold(
    threshold: float,
    distribution: StopLengthDistribution,
    break_even: float,
) -> float:
    """Expected cost of the deterministic policy "idle until threshold"
    under a fully known distribution."""
    return expected_online_cost(
        DeterministicThresholdStrategy(break_even, threshold), distribution, break_even
    )


@dataclass(frozen=True)
class OptimalThreshold:
    """The average-case-optimal deterministic threshold."""

    threshold: float  # may be math.inf (never turn off)
    expected_cost: float


def optimal_threshold(
    distribution: StopLengthDistribution,
    break_even: float,
    grid_size: int = 128,
) -> OptimalThreshold:
    """Minimize the expected cost over deterministic thresholds.

    Searches ``[0, 3B]`` on a grid, polishes the best interior candidate
    with bounded scalar minimization, and compares against the NEV
    endpoint (``threshold = inf``); unlike the worst-case setting of
    Appendix A, the average-case optimum can sit above ``B`` or at
    infinity (see the exponential example in the module docstring).
    """
    b = validate_break_even(break_even)
    if grid_size < 8:
        raise InvalidParameterError(f"grid_size must be >= 8, got {grid_size}")

    def cost(threshold: float) -> float:
        return expected_cost_of_threshold(threshold, distribution, b)

    grid = np.linspace(0.0, 3.0 * b, grid_size)
    costs = np.array([cost(x) for x in grid])
    best_index = int(costs.argmin())
    lo = grid[max(0, best_index - 1)]
    hi = grid[min(grid.size - 1, best_index + 1)]
    if hi > lo:
        result = optimize.minimize_scalar(cost, bounds=(lo, hi), method="bounded")
        interior_x, interior_cost = float(result.x), float(result.fun)
        if costs[best_index] < interior_cost:
            interior_x, interior_cost = float(grid[best_index]), float(costs[best_index])
    else:  # pragma: no cover - degenerate grid
        interior_x, interior_cost = float(grid[best_index]), float(costs[best_index])
    nev_cost = distribution.mean()
    if nev_cost < interior_cost:
        return OptimalThreshold(threshold=math.inf, expected_cost=nev_cost)
    return OptimalThreshold(threshold=interior_x, expected_cost=interior_cost)


def exponential_expected_cost(threshold: float, mean: float, break_even: float) -> float:
    """Closed form for exponential stops: ``m + (B - m) e^{-x/m}``."""
    if mean <= 0.0:
        raise InvalidParameterError(f"mean must be > 0, got {mean!r}")
    b = validate_break_even(break_even)
    if math.isinf(threshold):
        return mean
    if threshold < 0.0:
        raise InvalidParameterError(f"threshold must be >= 0, got {threshold!r}")
    return mean + (b - mean) * math.exp(-threshold / mean)


def exponential_optimal_threshold(mean: float, break_even: float) -> OptimalThreshold:
    """[10]'s bang-bang optimum for exponential stops.

    ``m < B`` → never turn off (cost ``m``); ``m > B`` → turn off
    immediately (cost ``B``); at ``m == B`` every threshold ties (we
    return TOI by convention).
    """
    if mean <= 0.0:
        raise InvalidParameterError(f"mean must be > 0, got {mean!r}")
    b = validate_break_even(break_even)
    if mean < b:
        return OptimalThreshold(threshold=math.inf, expected_cost=mean)
    return OptimalThreshold(threshold=0.0, expected_cost=b)
