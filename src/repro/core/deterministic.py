"""Deterministic baseline strategies: NEV, TOI, DET and b-DET.

These are the strategies reviewed in Section 2.2 and the two deterministic
vertices (Section 4.4) of the constrained ski-rental LP:

* **NEV** — never turn the engine off; the behaviour of drivers reluctant
  to shut down (unbounded competitive ratio for long stops).
* **TOI** — turn off immediately; the naive stop-start-system default
  (fixed cost ``B`` per stop).
* **DET** — idle until exactly ``B`` then shut off; the classic 2-competitive
  deterministic algorithm of Karlin et al. (Eq. 6).
* **b-DET** — idle until ``b < B``; the new vertex introduced by the
  paper.  Its optimal ``b* = sqrt(mu_B_minus * B / q_B_plus)`` balances the
  restart overhead on short stops against the idle waste on long ones
  (Eqs. 34-35), and is admissible iff Eq. (36) holds.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError
from .stats import StopStatistics
from .strategy import DeterministicThresholdStrategy

__all__ = [
    "NeverOff",
    "TurnOffImmediately",
    "Deterministic",
    "BDet",
    "optimal_b",
    "b_det_condition_holds",
    "b_det_worst_case_cost",
]


class NeverOff(DeterministicThresholdStrategy):
    """NEV: keep idling for the whole stop, whatever its length.

    Modelled as an infinite threshold; cost is always ``y`` and the
    per-stop competitive ratio grows without bound as ``y → ∞``.
    """

    name = "NEV"

    def __init__(self, break_even: float) -> None:
        super().__init__(break_even, threshold=math.inf)


class TurnOffImmediately(DeterministicThresholdStrategy):
    """TOI: shut the engine off the moment the vehicle stops.

    The paper models TOI as an atom at an arbitrarily small ``ε``; with a
    threshold of exactly 0 the cost is ``B`` for every stop, matching the
    paper's ``E[cost_TOI] = B``.
    """

    name = "TOI"

    def __init__(self, break_even: float) -> None:
        super().__init__(break_even, threshold=0.0)


class Deterministic(DeterministicThresholdStrategy):
    """DET: the classic break-even strategy ``x = B`` (Karlin et al. 1988).

    2-competitive per stop (Eq. 6) and optimal among deterministic
    strategies for the worst-case per-stop ratio.
    """

    name = "DET"

    def __init__(self, break_even: float) -> None:
        super().__init__(break_even, threshold=break_even)


def optimal_b(stats: StopStatistics) -> float:
    """The cost-minimizing b-DET threshold ``b* = sqrt(mu⁻ B / q⁺)``.

    Derived by minimizing Eq. (34) over ``b``.  Undefined when
    ``q_B_plus == 0`` (no long stops — the expression diverges and DET is
    optimal anyway); we raise in that case rather than return infinity.
    """
    if stats.q_b_plus <= 0.0:
        raise InvalidParameterError(
            "optimal_b is undefined for q_B_plus == 0 (no long stops); "
            "DET is the optimal strategy there"
        )
    ratio = stats.mu_b_minus * stats.break_even / stats.q_b_plus
    if math.isfinite(ratio):
        return math.sqrt(ratio)
    # A subnormal q⁺ overflows the division even though b* itself is
    # representable; sqrt each factor separately in that corner only, so
    # normal inputs keep their exact historical value.
    return math.sqrt(stats.mu_b_minus * stats.break_even) / math.sqrt(stats.q_b_plus)


def b_det_condition_holds(stats: StopStatistics) -> bool:
    """Admissibility condition (36): ``mu⁻/B < (1 - q⁺)² / q⁺``.

    Equivalent to ``b* > mu⁻ / (1 - q⁺)``: the optimal threshold must sit
    above the conditional short-stop mean, otherwise the adversary can make
    *every* stop outlast ``b`` and b-DET degenerates to a cost of ``b + B``
    (strictly worse than TOI's ``B``).
    """
    if stats.q_b_plus <= 0.0:
        return False
    if stats.q_b_plus >= 1.0:
        # (1 - q)^2 / q = 0 and mu_B_minus must be 0 by feasibility; the
        # strict inequality fails, so b-DET is inadmissible.
        return False
    return stats.normalized_mu < (1.0 - stats.q_b_plus) ** 2 / stats.q_b_plus


def b_det_worst_case_cost(stats: StopStatistics) -> float:
    """Worst-case expected cost of b-DET at the optimal ``b*`` (Eq. 35):
    ``(sqrt(mu⁻) + sqrt(q⁺ B))²``.

    Only meaningful when :func:`b_det_condition_holds`; callers in the
    vertex-selection logic treat the inadmissible case as ``+inf``
    (b-DET is then dominated by TOI and never selected).
    """
    if not b_det_condition_holds(stats):
        return math.inf
    return (
        math.sqrt(stats.mu_b_minus)
        + math.sqrt(stats.q_b_plus * stats.break_even)
    ) ** 2


class BDet(DeterministicThresholdStrategy):
    """b-DET: idle until ``b`` (``0 < b < B``) then shut off.

    Use :meth:`from_statistics` to instantiate it at the paper's optimal
    threshold ``b*`` for a given ``(mu_B_minus, q_B_plus)`` pair.
    """

    name = "b-DET"

    def __init__(self, break_even: float, b: float) -> None:
        if not 0.0 < float(b) < float(break_even):
            raise InvalidParameterError(
                f"b-DET threshold must satisfy 0 < b < B; got b={b!r}, B={break_even!r}"
            )
        super().__init__(break_even, threshold=float(b))

    @classmethod
    def from_statistics(cls, stats: StopStatistics) -> "BDet":
        """b-DET at the optimal threshold ``b*`` (Eqs. 34-36).

        Raises
        ------
        InvalidParameterError
            If condition (36) fails (b-DET is inadmissible) or ``b*`` falls
            outside ``(0, B)``.
        """
        if not b_det_condition_holds(stats):
            raise InvalidParameterError(
                "b-DET is inadmissible for these statistics: condition (36) "
                f"mu_B_minus/B < (1-q_B_plus)^2/q_B_plus fails for {stats!r}"
            )
        return cls(stats.break_even, optimal_b(stats))
