"""Strategy serialization: deployment artifacts.

A fleet back end selects policies; vehicles execute them.  The wire
format is a small JSON-compatible dict carrying the strategy type and
its parameters.  Supported: every statistics-free baseline, b-DET,
b-Rand, MOM-Rand, and the proposed selector (serialized by its
statistics so the receiving side re-derives — and can re-verify — the
selection).

Stateful controllers (Adaptive, Contextual, PSK with a live predictor)
intentionally round-trip as their *current* executable policy, not their
estimator state.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import InvalidParameterError
from .brand import BRand
from .constrained import ProposedOnline
from .deterministic import BDet, Deterministic, NeverOff, TurnOffImmediately
from .randomized import MOMRand, NRand
from .stats import StopStatistics
from .strategy import Strategy

__all__ = ["strategy_to_dict", "strategy_from_dict"]

_SIMPLE_TYPES = {
    "NEV": NeverOff,
    "TOI": TurnOffImmediately,
    "DET": Deterministic,
    "N-Rand": NRand,
}


def strategy_to_dict(strategy: Strategy) -> dict:
    """Serialize a strategy to a JSON-compatible dict."""
    b = strategy.break_even
    if isinstance(strategy, ProposedOnline):
        return {
            "type": "Proposed",
            "break_even": b,
            "mu_b_minus": strategy.stats.mu_b_minus,
            "q_b_plus": strategy.stats.q_b_plus,
        }
    if isinstance(strategy, BDet):
        return {"type": "b-DET", "break_even": b, "b": strategy.threshold}
    if isinstance(strategy, BRand):
        return {"type": "b-Rand", "break_even": b, "beta": strategy.beta}
    if isinstance(strategy, MOMRand):
        return {
            "type": "MOM-Rand",
            "break_even": b,
            "mean_stop_length": strategy.mean_stop_length,
        }
    for name, cls in _SIMPLE_TYPES.items():
        if type(strategy) is cls:
            return {"type": name, "break_even": b}
    raise InvalidParameterError(
        f"cannot serialize strategy of type {type(strategy).__name__}"
    )


def strategy_from_dict(document: Mapping) -> Strategy:
    """Reconstruct a strategy from :func:`strategy_to_dict` output."""
    try:
        kind = document["type"]
        b = float(document["break_even"])
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed strategy document: {exc}") from exc
    if kind in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[kind](b)
    if kind == "b-DET":
        return BDet(b, float(document["b"]))
    if kind == "b-Rand":
        return BRand(b, float(document["beta"]))
    if kind == "MOM-Rand":
        return MOMRand(b, float(document["mean_stop_length"]))
    if kind == "Proposed":
        stats = StopStatistics(
            mu_b_minus=float(document["mu_b_minus"]),
            q_b_plus=float(document["q_b_plus"]),
            break_even=b,
        )
        return ProposedOnline(stats)
    raise InvalidParameterError(f"unknown strategy type {kind!r}")
