"""Cost primitives of the idling-reduction ski-rental problem.

These are Eqs. (2)-(4) of the paper.  All costs are expressed in seconds of
idling (the idling cost per second is the unit cost, the restart cost is the
break-even interval ``B``).

Two APIs are provided for each quantity:

* scalar functions (``offline_cost``, ``online_cost``, ``competitive_ratio``)
  that operate on Python floats and validate their inputs, and
* vectorised variants (suffix ``_vec``) that accept numpy arrays of stop
  lengths and are used by the Monte-Carlo and fleet-evaluation layers.

Conventions
-----------
* ``y`` is the (true, adversarial/random) stop length in seconds.
* ``x`` is the idling threshold chosen by the online algorithm: the engine
  idles until ``x`` and is then shut off, paying the restart cost ``B`` when
  the stop outlasts the threshold.
* Ties follow Eq. (3): for ``y >= x`` the online algorithm pays ``x + B``;
  only strictly shorter stops (``y < x``) escape the restart cost.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "validate_break_even",
    "validate_stop_length",
    "offline_cost",
    "online_cost",
    "competitive_ratio",
    "offline_cost_vec",
    "online_cost_vec",
    "competitive_ratio_vec",
]


def validate_break_even(break_even: float) -> float:
    """Validate and return the break-even interval ``B``.

    Raises
    ------
    InvalidParameterError
        If ``break_even`` is not a strictly positive finite number.
    """
    b = float(break_even)
    if not np.isfinite(b) or b <= 0.0:
        raise InvalidParameterError(
            f"break-even interval must be a positive finite number, got {break_even!r}"
        )
    return b


def validate_stop_length(stop_length: float) -> float:
    """Validate and return a stop length ``y >= 0``.

    Raises
    ------
    InvalidParameterError
        If ``stop_length`` is negative, NaN or infinite.
    """
    y = float(stop_length)
    if not np.isfinite(y) or y < 0.0:
        raise InvalidParameterError(
            f"stop length must be a non-negative finite number, got {stop_length!r}"
        )
    return y


def offline_cost(stop_length: float, break_even: float) -> float:
    """Cost of the clairvoyant offline algorithm for a stop (Eq. 2).

    The offline optimum idles through short stops (``y < B``, cost ``y``)
    and shuts off immediately for long stops (``y >= B``, cost ``B``).
    """
    y = validate_stop_length(stop_length)
    b = validate_break_even(break_even)
    return min(y, b)


def online_cost(threshold: float, stop_length: float, break_even: float) -> float:
    """Cost of an online algorithm idling until ``threshold`` (Eq. 3).

    Parameters
    ----------
    threshold:
        Idling time ``x`` selected by the online algorithm.
    stop_length:
        Actual stop length ``y``.
    break_even:
        Break-even interval ``B``.
    """
    x = validate_stop_length(threshold)
    y = validate_stop_length(stop_length)
    b = validate_break_even(break_even)
    if y < x:
        return y
    return x + b


def competitive_ratio(threshold: float, stop_length: float, break_even: float) -> float:
    """Per-stop competitive ratio ``cr(x, y)`` (Eq. 4).

    Undefined for zero-length stops (both costs vanish); we follow the
    convention that a zero-length stop has ratio 1 when the threshold is
    positive (neither algorithm pays anything) and ``+inf`` when the online
    algorithm shuts off at ``x = 0`` and pays the restart cost for nothing.
    """
    x = validate_stop_length(threshold)
    y = validate_stop_length(stop_length)
    b = validate_break_even(break_even)
    off = min(y, b)
    on = y if y < x else x + b
    if off == 0.0:
        return 1.0 if on == 0.0 else float("inf")
    return on / off


def offline_cost_vec(stop_lengths: np.ndarray, break_even: float) -> np.ndarray:
    """Vectorised :func:`offline_cost` over an array of stop lengths."""
    b = validate_break_even(break_even)
    y = np.asarray(stop_lengths, dtype=float)
    if y.size and (np.any(~np.isfinite(y)) or np.any(y < 0.0)):
        raise InvalidParameterError("stop lengths must be non-negative and finite")
    return np.minimum(y, b)


def online_cost_vec(
    thresholds: np.ndarray | float,
    stop_lengths: np.ndarray,
    break_even: float,
) -> np.ndarray:
    """Vectorised :func:`online_cost`.

    ``thresholds`` may be a scalar (deterministic strategy applied to every
    stop) or an array broadcastable against ``stop_lengths`` (randomized
    strategy with one draw per stop).
    """
    b = validate_break_even(break_even)
    y = np.asarray(stop_lengths, dtype=float)
    x = np.asarray(thresholds, dtype=float)
    if y.size and (np.any(~np.isfinite(y)) or np.any(y < 0.0)):
        raise InvalidParameterError("stop lengths must be non-negative and finite")
    if x.size and (np.any(~np.isfinite(x)) or np.any(x < 0.0)):
        raise InvalidParameterError("thresholds must be non-negative and finite")
    x, y = np.broadcast_arrays(x, y)
    return np.where(y < x, y, x + b)


def competitive_ratio_vec(
    thresholds: np.ndarray | float,
    stop_lengths: np.ndarray,
    break_even: float,
) -> np.ndarray:
    """Vectorised :func:`competitive_ratio`.

    Zero-length stops follow the scalar convention (ratio 1 when the online
    cost is also zero, ``+inf`` otherwise).
    """
    on = online_cost_vec(thresholds, stop_lengths, break_even)
    off = offline_cost_vec(stop_lengths, break_even)
    ratio = np.empty_like(on)
    zero = off == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio[~zero] = on[~zero] / off[~zero]
    ratio[zero] = np.where(on[zero] == 0.0, 1.0, np.inf)
    return ratio
