"""Strategy-selection regions and worst-case CR surfaces (Figures 1-2).

Figure 1(a) colours the ``(mu_B_minus / B, q_B_plus)`` plane by which
vertex strategy the constrained solver selects; Figure 1(b) shows the
resulting worst-case CR surface.  Figure 2 takes 1-D slices: CR curves of
each vertex strategy (and their lower envelope, the proposed algorithm)
along lines of constant ``q_B_plus`` or constant ``mu_B_minus``.

The feasible region is ``mu_B_minus <= (1 - q_B_plus) * B``; infeasible
grid cells are reported with ``region = "infeasible"`` and NaN CRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..engine import ParallelMap
from ..errors import InvalidParameterError
from .constrained import ConstrainedSkiRentalSolver
from .stats import StopStatistics

__all__ = ["RegionGrid", "compute_region_grid", "cr_slice", "STRATEGY_CODES"]

#: Stable integer codes for the region map (CSV/plot friendly).
STRATEGY_CODES = {"TOI": 0, "DET": 1, "b-DET": 2, "N-Rand": 3, "infeasible": -1}


@dataclass(frozen=True)
class RegionGrid:
    """Dense evaluation of the constrained solver over a statistics grid.

    Attributes
    ----------
    normalized_mu:
        Grid of ``mu_B_minus / B`` values (the x-axis).
    q_b_plus:
        Grid of ``q_B_plus`` values (the y-axis).
    region_codes:
        ``(len(q_b_plus), len(normalized_mu))`` array of
        :data:`STRATEGY_CODES` values.
    worst_case_cr:
        Matching array of optimal worst-case CRs (NaN where infeasible).
    """

    normalized_mu: np.ndarray
    q_b_plus: np.ndarray
    region_codes: np.ndarray
    worst_case_cr: np.ndarray

    def region_name_at(self, mu_index: int, q_index: int) -> str:
        """Decode the region label of one grid cell."""
        code = int(self.region_codes[q_index, mu_index])
        for name, value in STRATEGY_CODES.items():
            if value == code:
                return name
        raise InvalidParameterError(f"unknown region code {code}")

    def region_fractions(self) -> dict:
        """Fraction of the *feasible* grid owned by each strategy."""
        feasible = self.region_codes >= 0
        total = int(feasible.sum())
        fractions = {}
        for name, code in STRATEGY_CODES.items():
            if code < 0:
                continue
            fractions[name] = float((self.region_codes == code).sum() / max(total, 1))
        return fractions


def _grid_row(
    q: float, normalized_mu: np.ndarray, break_even: float
) -> tuple[np.ndarray, np.ndarray]:
    """One constant-``q`` row of the region grid (pure — the parallel
    task unit of :func:`compute_region_grid`)."""
    codes = np.empty(normalized_mu.size, dtype=int)
    crs = np.full(normalized_mu.size, np.nan)
    for mi, mu_norm in enumerate(normalized_mu):
        if mu_norm > (1.0 - q) + 1e-12:
            codes[mi] = STRATEGY_CODES["infeasible"]
            continue
        stats = StopStatistics(
            mu_b_minus=mu_norm * break_even, q_b_plus=q, break_even=break_even
        )
        selection = ConstrainedSkiRentalSolver(stats).select()
        codes[mi] = STRATEGY_CODES[selection.name]
        crs[mi] = selection.worst_case_cr
    return codes, crs


def compute_region_grid(
    break_even: float = 1.0,
    mu_points: int = 101,
    q_points: int = 101,
    mu_max: float = 1.0,
    jobs: int | None = None,
) -> RegionGrid:
    """Evaluate the solver on a dense ``(mu⁻/B, q⁺)`` grid (Figure 1).

    Grid points sit strictly inside ``(0, mu_max) × (0, 1)`` to avoid the
    degenerate corners (CR is undefined at ``mu⁻ = q⁺ = 0``).  Rows fan
    out over ``jobs`` worker processes (the computation is pure, so the
    grid is identical for every value).
    """
    if mu_points < 2 or q_points < 2:
        raise InvalidParameterError("grids need at least 2 points per axis")
    if not 0.0 < mu_max <= 1.0:
        raise InvalidParameterError(f"mu_max must lie in (0, 1], got {mu_max!r}")
    normalized_mu = np.linspace(0.0, mu_max, mu_points + 1, endpoint=False)[1:]
    q_values = np.linspace(0.0, 1.0, q_points + 1, endpoint=False)[1:]
    worker = partial(_grid_row, normalized_mu=normalized_mu, break_even=break_even)
    rows = ParallelMap(jobs, label="region-grid").map(worker, q_values.tolist())
    codes = np.stack([row_codes for row_codes, _ in rows])
    crs = np.stack([row_crs for _, row_crs in rows])
    return RegionGrid(
        normalized_mu=normalized_mu,
        q_b_plus=q_values,
        region_codes=codes,
        worst_case_cr=crs,
    )


def cr_slice(
    break_even: float = 1.0,
    fixed_q_b_plus: float | None = None,
    fixed_normalized_mu: float | None = None,
    points: int = 200,
) -> dict:
    """One projected view of Figure 2: worst-case CR of every vertex
    strategy (plus the proposed lower envelope) along a 1-D slice.

    Exactly one of ``fixed_q_b_plus`` / ``fixed_normalized_mu`` must be
    given; the other statistic is swept over its feasible range.

    Returns a dict of equal-length arrays: the swept axis (``"axis"``,
    plus ``"axis_name"``) and one CR series per strategy name, with NaN
    where a strategy is inadmissible/infeasible.
    """
    if (fixed_q_b_plus is None) == (fixed_normalized_mu is None):
        raise InvalidParameterError(
            "provide exactly one of fixed_q_b_plus / fixed_normalized_mu"
        )
    series: dict = {}
    names = ("TOI", "DET", "b-DET", "N-Rand", "Proposed")
    if fixed_q_b_plus is not None:
        q = float(fixed_q_b_plus)
        if not 0.0 < q < 1.0:
            raise InvalidParameterError(f"fixed_q_b_plus must lie in (0, 1), got {q!r}")
        axis = np.linspace(0.0, 1.0 - q, points + 1, endpoint=False)[1:]
        stats_iter = [
            StopStatistics(mu_norm * break_even, q, break_even) for mu_norm in axis
        ]
        series["axis_name"] = "normalized_mu"
    else:
        mu_norm = float(fixed_normalized_mu)
        if not 0.0 <= mu_norm < 1.0:
            raise InvalidParameterError(
                f"fixed_normalized_mu must lie in [0, 1), got {mu_norm!r}"
            )
        axis = np.linspace(0.0, 1.0 - mu_norm, points + 1, endpoint=False)[1:]
        stats_iter = [StopStatistics(mu_norm * break_even, q, break_even) for q in axis]
        series["axis_name"] = "q_b_plus"
    series["axis"] = axis
    for name in names:
        series[name] = np.full(axis.size, np.nan)
    for index, stats in enumerate(stats_iter):
        selection = ConstrainedSkiRentalSolver(stats).select()
        for vertex in selection.vertices:
            if np.isfinite(vertex.worst_case_cr):
                series[vertex.name][index] = vertex.worst_case_cr
        series["Proposed"][index] = selection.worst_case_cr
    return series
