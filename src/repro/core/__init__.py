"""The paper's core contribution: ski-rental costs, baseline strategies,
and the constrained ski-rental solver (Sections 2-4)."""

from .adaptive import AdaptiveProposed
from .contextual import ContextualProposed, hour_of_day_context
from .tailrisk import TailRiskRand, max_nrand_weight, tail_cap_feasible
from .adversary import (
    appendix_a_adversary,
    conditional_mean_adversary,
    worst_case_for_bdet,
)
from .analysis import (
    empirical_cr,
    empirical_offline_cost,
    empirical_online_cost,
    expected_cr,
    expected_cr_prime,
    expected_offline_cost,
    expected_online_cost,
    monte_carlo_online_cost,
    worst_case_cr,
    worst_case_cr_prime,
    worst_case_expected_cost,
)
from .constrained import (
    ConstrainedSkiRentalSolver,
    ProposedOnline,
    Selection,
    VertexEvaluation,
    worst_case_cost_bdet,
    worst_case_cost_det,
    worst_case_cost_nrand,
    worst_case_cost_toi,
)
from .costs import (
    competitive_ratio,
    competitive_ratio_vec,
    offline_cost,
    offline_cost_vec,
    online_cost,
    online_cost_vec,
)
from .kernels import (
    PrefixSumSample,
    bootstrap_cr_samples,
    bootstrap_resample_indices,
    empirical_cr_kernel,
    gauss_legendre_rule,
    quantile_pair,
    strategy_cost,
)
from .deterministic import (
    BDet,
    Deterministic,
    NeverOff,
    TurnOffImmediately,
    b_det_condition_holds,
    b_det_worst_case_cost,
    optimal_b,
)
from .averagecase import (
    OptimalThreshold,
    exponential_expected_cost,
    exponential_optimal_threshold,
    expected_cost_of_threshold,
    optimal_threshold,
)
from .prediction import (
    NoisyOracle,
    PredictedThreshold,
    PSKStrategy,
    consistency_bound,
    psk_threshold,
    robustness_bound,
)
from .brand import (
    BRand,
    ImprovedConstrainedSolver,
    ImprovedSelection,
    b_rand_worst_case_cost,
    optimal_beta,
)
from .lp import LPCoefficients, lp_coefficients, solve_lp, verify_against_lp
from .minimax import GameSolution, solve_constrained_game, solve_unconstrained_game
from .multislope import FollowTheEnvelope, MultislopeProblem, Slope
from .multislope_game import (
    MultislopeGameSolution,
    pure_strategy_cost,
    solve_multislope_game,
)
from .randomized import MOMRand, NRand, mom_rand_cr_prime_bound, mom_rand_uses_revised_pdf
from .serialize import strategy_from_dict, strategy_to_dict
from .sensitivity import (
    misspecified_worst_case_cr,
    perturbed_statistics,
    robustness_margin,
)
from .regions import STRATEGY_CODES, RegionGrid, compute_region_grid, cr_slice
from .stats import StopStatistics, mu_b_minus_from_samples, q_b_plus_from_samples
from .strategy import (
    Atom,
    ContinuousRandomizedStrategy,
    DeterministicThresholdStrategy,
    MixedStrategy,
    Strategy,
)

__all__ = [
    # costs
    "offline_cost",
    "online_cost",
    "competitive_ratio",
    "offline_cost_vec",
    "online_cost_vec",
    "competitive_ratio_vec",
    # statistics
    "StopStatistics",
    "mu_b_minus_from_samples",
    "q_b_plus_from_samples",
    # strategy classes
    "Strategy",
    "DeterministicThresholdStrategy",
    "ContinuousRandomizedStrategy",
    "MixedStrategy",
    "Atom",
    # baselines
    "NeverOff",
    "TurnOffImmediately",
    "Deterministic",
    "BDet",
    "NRand",
    "MOMRand",
    "optimal_b",
    "b_det_condition_holds",
    "b_det_worst_case_cost",
    "mom_rand_uses_revised_pdf",
    "mom_rand_cr_prime_bound",
    # tail-risk control
    "TailRiskRand",
    "max_nrand_weight",
    "tail_cap_feasible",
    # constrained solver
    "ConstrainedSkiRentalSolver",
    "ProposedOnline",
    "Selection",
    "VertexEvaluation",
    "worst_case_cost_nrand",
    "worst_case_cost_toi",
    "worst_case_cost_det",
    "worst_case_cost_bdet",
    # LP cross-check
    "LPCoefficients",
    "lp_coefficients",
    "solve_lp",
    "verify_against_lp",
    # adversaries
    "worst_case_for_bdet",
    "conditional_mean_adversary",
    "appendix_a_adversary",
    # analysis
    "expected_offline_cost",
    "expected_online_cost",
    "expected_cr",
    "expected_cr_prime",
    "empirical_offline_cost",
    "empirical_online_cost",
    "empirical_cr",
    "monte_carlo_online_cost",
    "worst_case_expected_cost",
    "worst_case_cr",
    "worst_case_cr_prime",
    # batched kernels
    "PrefixSumSample",
    "strategy_cost",
    "empirical_cr_kernel",
    "bootstrap_resample_indices",
    "bootstrap_cr_samples",
    "gauss_legendre_rule",
    "quantile_pair",
    # regions
    "RegionGrid",
    "compute_region_grid",
    "cr_slice",
    "STRATEGY_CODES",
    # extensions
    "AdaptiveProposed",
    "ContextualProposed",
    "hour_of_day_context",
    "OptimalThreshold",
    "optimal_threshold",
    "expected_cost_of_threshold",
    "exponential_expected_cost",
    "exponential_optimal_threshold",
    "Slope",
    "MultislopeProblem",
    "FollowTheEnvelope",
    "MultislopeGameSolution",
    "pure_strategy_cost",
    "solve_multislope_game",
    # minimax validation & the b-Rand improvement
    "GameSolution",
    "solve_unconstrained_game",
    "solve_constrained_game",
    "BRand",
    "optimal_beta",
    "b_rand_worst_case_cost",
    "ImprovedSelection",
    "ImprovedConstrainedSolver",
    # learning-augmented
    "psk_threshold",
    "consistency_bound",
    "robustness_bound",
    "PSKStrategy",
    "PredictedThreshold",
    "NoisyOracle",
    # misspecification sensitivity
    "perturbed_statistics",
    "misspecified_worst_case_cr",
    "robustness_margin",
    # serialization
    "strategy_to_dict",
    "strategy_from_dict",
]
