"""Contextual strategy selection: different statistics per driving context.

A single ``(mu_B_minus, q_B_plus)`` pair averages over very different
situations — a rush-hour signal queue and a midnight errand do not share
a stop-length distribution.  When a context signal is available (hour of
day, road class, trip purpose), running one constrained selector *per
context* is guaranteed to do no worse in aggregate and typically does
strictly better: the per-context minimax optimum lower-bounds the
pooled one because the pooled statistics are a mixture of the contexts'.

:class:`ContextualProposed` maintains one
:class:`~repro.core.adaptive.AdaptiveProposed` per context key and
routes each stop by the key returned by ``context_of``.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from ..errors import InvalidParameterError
from .adaptive import AdaptiveProposed

__all__ = ["ContextualProposed", "hour_of_day_context"]


def hour_of_day_context(stop_start_time: float) -> int:
    """Default context key: hour of day (0-23) of the stop's start."""
    return int((float(stop_start_time) % 86400.0) // 3600.0)


class ContextualProposed:
    """One adaptive constrained selector per driving context.

    Parameters
    ----------
    break_even:
        Break-even interval shared by all contexts.
    context_of:
        Maps the caller's context token (e.g. a stop start timestamp) to
        a hashable context key.  Defaults to hour-of-day bucketing.
    min_samples, decay:
        Passed through to each per-context
        :class:`~repro.core.adaptive.AdaptiveProposed`.
    """

    def __init__(
        self,
        break_even: float,
        context_of: Callable[[float], Hashable] = hour_of_day_context,
        min_samples: int = 10,
        decay: float = 1.0,
    ) -> None:
        if not callable(context_of):
            raise InvalidParameterError("context_of must be callable")
        self.break_even = float(break_even)
        self.context_of = context_of
        self.min_samples = int(min_samples)
        self.decay = float(decay)
        self._selectors: dict[Hashable, AdaptiveProposed] = {}

    def _selector_for(self, context_token: float) -> AdaptiveProposed:
        key = self.context_of(context_token)
        if key not in self._selectors:
            self._selectors[key] = AdaptiveProposed(
                self.break_even, min_samples=self.min_samples, decay=self.decay
            )
        return self._selectors[key]

    @property
    def context_count(self) -> int:
        """Number of contexts seen so far."""
        return len(self._selectors)

    def selected_names(self) -> dict[Hashable, str]:
        """Current vertex choice per context."""
        return {key: sel.selected_name for key, sel in self._selectors.items()}

    def draw_threshold(self, context_token: float, rng: np.random.Generator) -> float:
        """The online decision for a stop in the given context."""
        return self._selector_for(context_token).draw_threshold(rng)

    def observe(self, context_token: float, stop_length: float) -> None:
        """Feed a completed stop into its context's estimator."""
        self._selector_for(context_token).observe(stop_length)

    def run_online(
        self,
        context_tokens: np.ndarray,
        stop_lengths: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Decide-then-observe over a (context, stop) stream; returns
        per-stop realized costs."""
        tokens = np.asarray(context_tokens, dtype=float)
        stops = np.asarray(stop_lengths, dtype=float)
        if tokens.shape != stops.shape or stops.size == 0:
            raise InvalidParameterError(
                "context tokens and stop lengths must be matching non-empty arrays"
            )
        costs = np.empty(stops.size)
        for index in range(stops.size):
            threshold = self.draw_threshold(tokens[index], rng)
            if stops[index] < threshold:
                costs[index] = stops[index]
            else:
                costs[index] = threshold + self.break_even
            self.observe(tokens[index], float(stops[index]))
        return costs
