"""Optimal randomized multislope strategies by numeric minimax.

Lotker, Patt-Shamir & Rawitz [14] show randomized multislope ski rental
admits competitive ratios below the deterministic 2 (down to e/(e-1) in
the classic case).  Rather than port their algorithm, we compute the
optimal randomized strategy directly, reusing the game machinery of
:mod:`repro.core.minimax`:

* a *pure* strategy is a non-decreasing vector of switch times
  ``t_1 <= ... <= t_{k-1}`` (enter state ``j`` when the stop reaches
  ``t_j``); we enumerate them on a time grid;
* the adversary picks the stop length; the payoff is
  ``cost / OPT(y)``, linearized by the Charnes-Cooper transform;
* one LP yields the game value and the optimal randomization over pure
  strategies.

Sanity anchors (tested): the two-state instance recovers ``e/(e-1)``;
every instance's value is sandwiched between 1 and the deterministic
follow-the-envelope ratio 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

import numpy as np

from ..errors import InvalidParameterError, SolverError
from .minimax import _solve_dual_lp
from .multislope import MultislopeProblem

__all__ = ["MultislopeGameSolution", "pure_strategy_cost", "solve_multislope_game"]


def pure_strategy_cost(
    problem: MultislopeProblem, switch_times, stop_length: float
) -> float:
    """Cost of the pure strategy "enter state j at time ``switch_times[j-1]``"
    on a stop of the given length (``y >= t`` pays the switch, the
    generalized Eq. 3 convention)."""
    times = list(switch_times)
    if len(times) != len(problem.slopes) - 1:
        raise InvalidParameterError(
            f"need {len(problem.slopes) - 1} switch times, got {len(times)}"
        )
    if any(b < a for a, b in zip(times, times[1:])) or any(t < 0 for t in times):
        raise InvalidParameterError(f"switch times must be non-decreasing and >= 0: {times}")
    y = float(stop_length)
    if y < 0.0:
        raise InvalidParameterError(f"stop length must be >= 0, got {stop_length!r}")
    cost = 0.0
    clock = 0.0
    state = 0
    for next_state, t in enumerate(times, start=1):
        if y < t:
            break
        cost += problem.slopes[state].rate * (t - clock)
        cost += (
            problem.slopes[next_state].switch_cost
            - problem.slopes[state].switch_cost
        )
        state = next_state
        clock = t
    if y > clock:
        cost += problem.slopes[state].rate * (y - clock)
    return cost


@dataclass(frozen=True)
class MultislopeGameSolution:
    """Optimal randomized multislope strategy (mixture of pure switch
    profiles) and the game value (worst-case expected CR)."""

    value: float
    pure_strategies: tuple[tuple[float, ...], ...]
    weights: np.ndarray

    def support(self, threshold: float = 1e-6) -> list[tuple[tuple[float, ...], float]]:
        """Pure strategies carrying more than ``threshold`` probability."""
        return [
            (profile, float(weight))
            for profile, weight in zip(self.pure_strategies, self.weights)
            if weight > threshold
        ]


def solve_multislope_game(
    problem: MultislopeProblem,
    time_points: int = 20,
    horizon_factor: float = 1.5,
) -> MultislopeGameSolution:
    """Solve the randomized multislope game on a time grid.

    Requires the deepest state to have rate 0 (a full engine-off state
    exists), which makes finite switch times optimal and bounds the
    useful horizon by the last offline transition.
    """
    if problem.slopes[-1].rate != 0.0:
        raise InvalidParameterError(
            "the multislope game requires a final state with zero rate"
        )
    if time_points < 4:
        raise InvalidParameterError(f"time_points must be >= 4, got {time_points}")
    horizon = horizon_factor * max(problem.transition_points)
    time_grid = np.linspace(0.0, horizon, time_points)
    k = len(problem.slopes) - 1
    profiles = [
        tuple(time_grid[list(indices)])
        for indices in combinations_with_replacement(range(time_points), k)
    ]
    # Adversary stop lengths: at/just below every grid time + beyond.
    epsilon = horizon / (time_points * 50.0)
    y_candidates = np.concatenate(
        [time_grid, np.clip(time_grid[1:] - epsilon, 0.0, None), [horizon * 2.0]]
    )
    y_grid = np.unique(y_candidates)
    offline = np.array([problem.offline_cost(float(y)) for y in y_grid])
    keep = offline > 0.0
    y_grid, offline = y_grid[keep], offline[keep]
    cost = np.array(
        [
            [pure_strategy_cost(problem, profile, float(y)) for y in y_grid]
            for profile in profiles
        ]
    )
    solution = _solve_dual_lp(
        cost,
        adversary_rows=offline[None, :],
        adversary_rhs=np.array([1.0]),
        x_grid=np.arange(len(profiles), dtype=float),
    )
    if not np.isfinite(solution.value):
        raise SolverError("multislope game produced a non-finite value")
    return MultislopeGameSolution(
        value=solution.value,
        pure_strategies=tuple(profiles),
        weights=solution.player_distribution,
    )
