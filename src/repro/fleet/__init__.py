"""NREL-like synthetic fleets (the paper's evaluation dataset substitute)."""

from .areas import AREA_NAMES, AREAS, AreaConfig, area_config
from .daily import (
    DailyFleetGenerator,
    DailyPattern,
    TimedVehicleRecord,
    default_daily_pattern,
)
from .generator import FleetGenerator, VehicleRecord
from .io import load_fleet_dataset, save_fleet_dataset
from .nrel import (
    DEFAULT_SEED,
    load_area,
    load_fleets,
    load_fleets_or_dataset,
    pooled_stops,
    total_vehicle_count,
    validate_fleets,
)

__all__ = [
    "AreaConfig",
    "AREAS",
    "AREA_NAMES",
    "area_config",
    "FleetGenerator",
    "VehicleRecord",
    "load_area",
    "load_fleets",
    "load_fleets_or_dataset",
    "pooled_stops",
    "total_vehicle_count",
    "validate_fleets",
    "DEFAULT_SEED",
    "save_fleet_dataset",
    "load_fleet_dataset",
    "DailyPattern",
    "DailyFleetGenerator",
    "TimedVehicleRecord",
    "default_daily_pattern",
]
