"""Fleet dataset persistence.

Synthetic fleets are pure functions of (config, seed), but persisting
them matters for (a) sharing the exact evaluation dataset alongside
results, and (b) swapping in real data with the same loader interface.

Format: one directory per dataset containing

* ``manifest.json`` — dataset seed, per-area configs and vehicle counts;
* ``stops.csv`` — the flat stop table (``vehicle_id,start_time,duration``)
  of every vehicle, via :mod:`repro.traces.io`.

``load_fleet_dataset`` reconstructs ``{area: [VehicleRecord, ...]}`` and
verifies counts against the manifest.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..traces.io import read_stops_csv, write_stops_csv
from ..validation import (
    JsonQuarantineWriter,
    Policy,
    PolicyEnforcer,
    ValidationReport,
    manifest_area_findings,
)
from .areas import AREAS, AreaConfig
from .generator import VehicleRecord

__all__ = ["save_fleet_dataset", "load_fleet_dataset"]

_MANIFEST_NAME = "manifest.json"
_STOPS_NAME = "stops.csv"


def save_fleet_dataset(
    directory: str | Path,
    fleets: dict[str, list[VehicleRecord]],
    seed: int | None = None,
) -> Path:
    """Persist a fleet dataset; returns the dataset directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "seed": seed,
        "areas": {
            area: {
                "vehicle_count": len(vehicles),
                "vehicle_ids": [v.vehicle_id for v in vehicles],
                "scale_factors": [v.scale_factor for v in vehicles],
                "recording_days": vehicles[0].recording_days if vehicles else 7.0,
                "config": asdict(AREAS[area]) if area in AREAS else None,
            }
            for area, vehicles in fleets.items()
        },
    }
    with open(directory / _MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2)
    traces = [
        vehicle.to_trace() for vehicles in fleets.values() for vehicle in vehicles
    ]
    write_stops_csv(directory / _STOPS_NAME, traces)
    return directory


def load_fleet_dataset(
    directory: str | Path,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
) -> dict[str, list[VehicleRecord]]:
    """Load a dataset written by :func:`save_fleet_dataset`.

    Manifest integrity is validated under ``policy``: duplicate
    ``vehicle_ids`` (within and across areas), ``scale_factors`` length
    mismatches, non-positive/non-finite scale factors, vehicles listed
    in the manifest but absent from the stop table (including vehicles
    emptied by stop-row repair), ``vehicle_count`` disagreements and bad
    ``recording_days``.  ``strict`` raises a typed error at the first
    problem; ``repair`` drops offending vehicles with deterministic
    rules (first occurrence wins, missing scale factors default to 1.0)
    and records the actual count; ``quarantine`` additionally diverts
    dropped manifest entries to ``manifest.json.quarantine.json``.  The
    stop table is read through :func:`~repro.traces.io.read_stops_csv`
    with the same policy and report.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    stops_path = directory / _STOPS_NAME
    if not manifest_path.exists() or not stops_path.exists():
        raise TraceFormatError(
            f"{directory} is not a fleet dataset (missing manifest or stops table)"
        )
    with open(manifest_path) as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{manifest_path}: invalid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or not isinstance(manifest.get("areas"), dict):
        raise TraceFormatError(f"{manifest_path}: manifest must map 'areas' to objects")
    enforcer = PolicyEnforcer(policy, report, manifest_path)
    if enforcer.policy is Policy.QUARANTINE:
        enforcer.attach_quarantine_writer(
            JsonQuarantineWriter(manifest_path, enforcer.report)
        )
    per_vehicle = read_stops_csv(stops_path, policy=policy, report=enforcer.report)
    fleets: dict[str, list[VehicleRecord]] = {}
    claimed: set[str] = set()
    try:
        for area, info in manifest["areas"].items():
            enforcer.report.records_checked += 1
            structural = manifest_area_findings(area, info)
            fatal = [f for f in structural if f[0] == "malformed-document"]
            if fatal:
                for check, message in fatal:
                    enforcer.flag(check, message, record={area: info})
                continue  # repair/quarantine: skip the unusable area entry
            for check, message in structural:
                # Count/length mismatches are repairable: report them and
                # reconstruct from the per-vehicle data below.
                enforcer.flag(check, message, record={area: info}, repaired=True)
            ids = info["vehicle_ids"]
            scales = info.get("scale_factors")
            if not isinstance(scales, list) or len(scales) != len(ids):
                scales = [1.0] * len(ids)
            vehicles = []
            for index, (vehicle_id, scale) in enumerate(zip(ids, scales)):
                record = {"area": area, "vehicle_id": vehicle_id, "scale_factor": scale}
                if vehicle_id in claimed:
                    if not enforcer.flag(
                        "duplicate-vehicle-id",
                        f"area {area!r}: vehicle {vehicle_id!r} already listed",
                        line=index,
                        record=record,
                    ):
                        continue
                claimed.add(vehicle_id)
                if not isinstance(scale, (int, float)) or not np.isfinite(scale) or scale <= 0.0:
                    if not enforcer.flag(
                        "bad-scale-factor",
                        f"area {area!r}: vehicle {vehicle_id!r} has scale factor {scale!r}",
                        line=index,
                        record=record,
                    ):
                        continue
                if vehicle_id not in per_vehicle:
                    if not enforcer.flag(
                        "missing-vehicle-stops",
                        f"manifest lists {vehicle_id!r} but the stop table has no rows for it",
                        line=index,
                        record=record,
                    ):
                        continue
                days = info.get("recording_days", 7.0)
                if not isinstance(days, (int, float)) or not np.isfinite(days) or days <= 0.0:
                    days = 7.0  # deterministic default, already reported above
                vehicles.append(
                    VehicleRecord(
                        vehicle_id=vehicle_id,
                        area=area,
                        stop_lengths=np.asarray(per_vehicle[vehicle_id], dtype=float),
                        scale_factor=float(scale),
                        recording_days=float(days),
                    )
                )
            if len(vehicles) != info.get("vehicle_count", len(vehicles)):
                enforcer.flag(
                    "vehicle-count-mismatch",
                    f"area {area!r}: manifest promises {info['vehicle_count']} vehicles, "
                    f"reconstructed {len(vehicles)}",
                    record={area: info},
                    repaired=True,
                )
            fleets[area] = vehicles
    finally:
        enforcer.close()
    enforcer.report.emit_to_ledger(source=str(manifest_path))
    return fleets
