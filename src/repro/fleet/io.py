"""Fleet dataset persistence.

Synthetic fleets are pure functions of (config, seed), but persisting
them matters for (a) sharing the exact evaluation dataset alongside
results, and (b) swapping in real data with the same loader interface.

Format: one directory per dataset containing

* ``manifest.json`` — dataset seed, per-area configs and vehicle counts;
* ``stops.csv`` — the flat stop table (``vehicle_id,start_time,duration``)
  of every vehicle, via :mod:`repro.traces.io`.

``load_fleet_dataset`` reconstructs ``{area: [VehicleRecord, ...]}`` and
verifies counts against the manifest.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..traces.io import read_stops_csv, write_stops_csv
from .areas import AREAS, AreaConfig
from .generator import VehicleRecord

__all__ = ["save_fleet_dataset", "load_fleet_dataset"]

_MANIFEST_NAME = "manifest.json"
_STOPS_NAME = "stops.csv"


def save_fleet_dataset(
    directory: str | Path,
    fleets: dict[str, list[VehicleRecord]],
    seed: int | None = None,
) -> Path:
    """Persist a fleet dataset; returns the dataset directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "seed": seed,
        "areas": {
            area: {
                "vehicle_count": len(vehicles),
                "vehicle_ids": [v.vehicle_id for v in vehicles],
                "scale_factors": [v.scale_factor for v in vehicles],
                "recording_days": vehicles[0].recording_days if vehicles else 7.0,
                "config": asdict(AREAS[area]) if area in AREAS else None,
            }
            for area, vehicles in fleets.items()
        },
    }
    with open(directory / _MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2)
    traces = [
        vehicle.to_trace() for vehicles in fleets.values() for vehicle in vehicles
    ]
    write_stops_csv(directory / _STOPS_NAME, traces)
    return directory


def load_fleet_dataset(directory: str | Path) -> dict[str, list[VehicleRecord]]:
    """Load a dataset written by :func:`save_fleet_dataset`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    stops_path = directory / _STOPS_NAME
    if not manifest_path.exists() or not stops_path.exists():
        raise TraceFormatError(
            f"{directory} is not a fleet dataset (missing manifest or stops table)"
        )
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    per_vehicle = read_stops_csv(stops_path)
    fleets: dict[str, list[VehicleRecord]] = {}
    for area, info in manifest["areas"].items():
        vehicles = []
        ids = info["vehicle_ids"]
        scales = info.get("scale_factors", [1.0] * len(ids))
        for vehicle_id, scale in zip(ids, scales):
            if vehicle_id not in per_vehicle:
                raise TraceFormatError(
                    f"manifest lists {vehicle_id!r} but the stop table has no rows for it"
                )
            vehicles.append(
                VehicleRecord(
                    vehicle_id=vehicle_id,
                    area=area,
                    stop_lengths=np.asarray(per_vehicle[vehicle_id], dtype=float),
                    scale_factor=float(scale),
                    recording_days=float(info.get("recording_days", 7.0)),
                )
            )
        if len(vehicles) != info["vehicle_count"]:
            raise TraceFormatError(
                f"area {area!r}: manifest promises {info['vehicle_count']} vehicles, "
                f"reconstructed {len(vehicles)}"
            )
        fleets[area] = vehicles
    return fleets
