"""Synthetic fleet generation.

Turns an :class:`~repro.fleet.areas.AreaConfig` into per-vehicle driving
records.  Each vehicle gets:

* a stops-per-day rate drawn from a gamma distribution matching the
  area's Table 1 mean/std (gamma keeps the rate positive and reproduces
  the long right tail of the stops/day histogram);
* a private lognormal *scale factor* on stop lengths (driver and route
  heterogeneity — the reason different vehicles in one area see different
  ``(mu_B_minus, q_B_plus)`` and the proposed selector picks different
  vertices for them);
* one week of stop lengths drawn from the scaled area mixture.

Generation fans out one independent ``SeedSequence`` child per vehicle
(:mod:`repro.engine.seeding`), so vehicle ``i`` is a pure function of
``(config, seed, i)`` — the fleet is bit-identical whether it is built
serially or by any number of worker processes (``jobs``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributions import ScaledDistribution
from ..engine import ParallelMap, spawn_seeds
from ..errors import InvalidParameterError
from ..traces.events import DrivingTrace
from .areas import AreaConfig

__all__ = ["VehicleRecord", "FleetGenerator"]


@dataclass
class VehicleRecord:
    """One synthetic vehicle's week of stops."""

    vehicle_id: str
    area: str
    stop_lengths: np.ndarray
    scale_factor: float
    recording_days: float = 7.0
    _trace: DrivingTrace | None = field(default=None, repr=False)

    @property
    def stops_per_day(self) -> float:
        return self.stop_lengths.size / self.recording_days

    def to_trace(self) -> DrivingTrace:
        """Materialize a DrivingTrace (lazy, cached)."""
        if self._trace is None:
            self._trace = DrivingTrace.from_stop_lengths(
                self.vehicle_id,
                self.stop_lengths,
                recording_days=self.recording_days,
                area=self.area,
            )
        return self._trace


class FleetGenerator:
    """Generates the synthetic fleet of one area.

    Parameters
    ----------
    config:
        Area configuration (counts, Table 1 moments, mixture parameters).
    seed:
        Seed of the fleet's private random generator; a fixed seed
        regenerates the identical fleet, which the experiment harness
        relies on.
    """

    def __init__(self, config: AreaConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)

    def _stops_per_day_rate(self, rng: np.random.Generator) -> float:
        """Per-vehicle stops/day rate: gamma with the Table 1 moments."""
        mean = self.config.stops_per_day_mean
        std = self.config.stops_per_day_std
        shape = (mean / std) ** 2
        scale = std * std / mean
        return float(max(0.5, rng.gamma(shape, scale)))

    def generate_vehicle(
        self, index: int, rng: np.random.Generator
    ) -> VehicleRecord:
        """Generate one vehicle's record."""
        if index < 0:
            raise InvalidParameterError(f"vehicle index must be >= 0, got {index}")
        config = self.config
        rate = self._stops_per_day_rate(rng)
        stop_count = max(1, int(rng.poisson(rate * config.recording_days)))
        scale = float(
            np.exp(rng.normal(-0.5 * config.vehicle_scale_sigma**2, config.vehicle_scale_sigma))
        )
        distribution = ScaledDistribution(config.stop_length_distribution(), scale)
        lengths = distribution.sample(stop_count, rng)
        # Physical floor: a recorded stop is at least one sample (1 s).
        lengths = np.maximum(lengths, 1.0)
        return VehicleRecord(
            vehicle_id=f"{config.name}-{index:04d}",
            area=config.name,
            stop_lengths=lengths,
            scale_factor=scale,
            recording_days=config.recording_days,
        )

    def _vehicle_from_task(
        self, task: tuple[int, np.random.SeedSequence]
    ) -> VehicleRecord:
        """Worker entry: build one vehicle from its (index, child seed)."""
        index, child = task
        return self.generate_vehicle(index, np.random.default_rng(child))

    def generate(
        self, vehicle_count: int | None = None, jobs: int | None = None
    ) -> list[VehicleRecord]:
        """Generate the full fleet (``config.vehicle_count`` by default).

        Each vehicle draws from its own ``SeedSequence`` child, so the
        result is identical for every ``jobs`` value.
        """
        count = self.config.vehicle_count if vehicle_count is None else int(vehicle_count)
        if count <= 0:
            raise InvalidParameterError(f"vehicle_count must be >= 1, got {count}")
        tasks = list(enumerate(spawn_seeds(self.seed, count)))
        return ParallelMap(jobs, label="fleet-generate").map(
            self._vehicle_from_task, tasks
        )

    def pooled_stop_lengths(
        self, vehicle_count: int | None = None, jobs: int | None = None
    ) -> np.ndarray:
        """All stop lengths of the fleet pooled (Figure 3's histogram)."""
        vehicles = self.generate(vehicle_count, jobs=jobs)
        return np.concatenate([vehicle.stop_lengths for vehicle in vehicles])
