"""Time-of-day structured fleets.

The base generator (:mod:`repro.fleet.generator`) draws stop lengths
i.i.d. from one area mixture; real driving has strong diurnal structure:
rush hours are dense with short signal/queue stops, midday brings
errands, nights are sparse and parking-heavy.  This module synthesizes
that structure so context-aware strategies
(:class:`~repro.core.contextual.ContextualProposed`) have something real
to exploit:

* a 24-entry stop-intensity profile (stops per hour of day);
* per-hour mixture weights over the same three components as the area
  configs (signal / congestion / errand-tail), shifted toward signals at
  the peaks and toward the tail off-peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributions import LogNormal, MixtureDistribution, Pareto
from ..errors import InvalidParameterError
from ..traces.events import SECONDS_PER_DAY, DrivingTrace, StopEvent, Trip
from .areas import AreaConfig, area_config

__all__ = ["DailyPattern", "TimedVehicleRecord", "DailyFleetGenerator", "default_daily_pattern"]

#: Relative stop intensity per hour of day (normalized internally):
#: AM peak 7-9, PM peak 16-19, quiet nights.
_DEFAULT_HOURLY_INTENSITY = np.array(
    [0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.2, 2.2, 2.4, 1.4, 1.0, 1.1,
     1.3, 1.1, 1.0, 1.2, 2.0, 2.4, 2.2, 1.4, 1.0, 0.8, 0.5, 0.3]
)


@dataclass(frozen=True)
class DailyPattern:
    """Diurnal structure: hourly intensity + per-hour mixture weights.

    ``hourly_weights[h]`` is a (signal, congestion, tail) weight triple
    for hour ``h``.
    """

    hourly_intensity: np.ndarray
    hourly_weights: tuple[tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        intensity = np.asarray(self.hourly_intensity, dtype=float)
        if intensity.shape != (24,) or np.any(intensity < 0.0) or intensity.sum() <= 0:
            raise InvalidParameterError(
                "hourly_intensity must be 24 non-negative values with positive sum"
            )
        if len(self.hourly_weights) != 24:
            raise InvalidParameterError("hourly_weights must have 24 entries")
        for triple in self.hourly_weights:
            if len(triple) != 3 or any(w < 0 for w in triple) or sum(triple) <= 0:
                raise InvalidParameterError(f"bad mixture weights {triple!r}")
        object.__setattr__(self, "hourly_intensity", intensity)

    def hour_probabilities(self) -> np.ndarray:
        return self.hourly_intensity / self.hourly_intensity.sum()


def default_daily_pattern(config: AreaConfig) -> DailyPattern:
    """Derive a diurnal pattern from an area config: its average mixture
    weights, tilted toward signals at the peaks (x1.6 signal weight) and
    toward the errand tail at night (x3 tail weight)."""
    base_signal, base_congestion, base_tail = config.weights
    weights = []
    for hour in range(24):
        peak = hour in (7, 8, 16, 17, 18)
        night = hour < 6 or hour >= 22
        signal = base_signal * (1.6 if peak else 1.0) * (0.4 if night else 1.0)
        congestion = base_congestion * (1.3 if peak else 1.0)
        tail = base_tail * (3.0 if night else 1.0) * (0.5 if peak else 1.0)
        weights.append((signal, congestion, tail))
    return DailyPattern(
        hourly_intensity=_DEFAULT_HOURLY_INTENSITY.copy(),
        hourly_weights=tuple(weights),
    )


@dataclass
class TimedVehicleRecord:
    """A vehicle's week of stops *with start timestamps* (seconds from
    the recording start)."""

    vehicle_id: str
    area: str
    start_times: np.ndarray
    stop_lengths: np.ndarray
    recording_days: float = 7.0
    _trace: DrivingTrace | None = field(default=None, repr=False)

    def hours_of_day(self) -> np.ndarray:
        """Hour-of-day (0-23) per stop."""
        return ((self.start_times % SECONDS_PER_DAY) // 3600.0).astype(int)

    def to_trace(self) -> DrivingTrace:
        """Materialize as a DrivingTrace (one trip per day)."""
        if self._trace is not None:
            return self._trace
        trips = []
        order = np.argsort(self.start_times)
        starts, lengths = self.start_times[order], self.stop_lengths[order]
        for day in range(int(np.ceil(self.recording_days))):
            lo, hi = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
            mask = (starts >= lo) & (starts < hi)
            if not mask.any():
                continue
            day_starts, day_lengths = starts[mask], lengths[mask]
            stops = []
            cursor = float(day_starts[0])
            for start, length in zip(day_starts, day_lengths):
                start = max(float(start), cursor)  # de-overlap
                stops.append(StopEvent(start_time=start, duration=float(length)))
                cursor = start + float(length) + 1.0
            trips.append(
                Trip(
                    start_time=min(float(day_starts[0]), stops[0].start_time),
                    duration=cursor + 1.0 - float(day_starts[0]),
                    stops=tuple(stops),
                )
            )
        self._trace = DrivingTrace(
            vehicle_id=self.vehicle_id,
            trips=tuple(trips),
            recording_days=self.recording_days,
            area=self.area,
        )
        return self._trace


class DailyFleetGenerator:
    """Synthesizes vehicles with diurnal stop structure."""

    def __init__(
        self,
        config: AreaConfig | str,
        pattern: DailyPattern | None = None,
        seed: int = 0,
    ) -> None:
        self.config = area_config(config) if isinstance(config, str) else config
        self.pattern = pattern if pattern is not None else default_daily_pattern(self.config)
        self.seed = int(seed)
        self._hour_mixtures = [
            MixtureDistribution(
                [
                    LogNormal(self.config.signal_mu, self.config.signal_sigma),
                    LogNormal(self.config.congestion_mu, self.config.congestion_sigma),
                    Pareto(self.config.tail_alpha, self.config.tail_scale),
                ],
                list(np.asarray(w, dtype=float) / sum(w)),
            )
            for w in self.pattern.hourly_weights
        ]

    def generate_vehicle(self, index: int, rng: np.random.Generator) -> TimedVehicleRecord:
        config = self.config
        days = int(config.recording_days)
        total_stops = max(
            1, int(rng.poisson(config.stops_per_day_mean * config.recording_days))
        )
        hour_probabilities = self.pattern.hour_probabilities()
        hours = rng.choice(24, size=total_stops, p=hour_probabilities)
        offsets = rng.uniform(0.0, 3600.0, size=total_stops)
        day_indices = rng.integers(0, days, size=total_stops)
        start_times = day_indices * SECONDS_PER_DAY + hours * 3600.0 + offsets
        lengths = np.empty(total_stops)
        for hour in range(24):
            mask = hours == hour
            n = int(mask.sum())
            if n:
                lengths[mask] = np.maximum(
                    self._hour_mixtures[hour].sample(n, rng), 1.0
                )
        order = np.argsort(start_times)
        return TimedVehicleRecord(
            vehicle_id=f"{config.name}-daily-{index:04d}",
            area=config.name,
            start_times=start_times[order],
            stop_lengths=lengths[order],
            recording_days=config.recording_days,
        )

    def generate(self, vehicle_count: int) -> list[TimedVehicleRecord]:
        if vehicle_count <= 0:
            raise InvalidParameterError(f"vehicle_count must be >= 1, got {vehicle_count}")
        rng = np.random.default_rng(self.seed)
        return [self.generate_vehicle(index, rng) for index in range(vehicle_count)]
