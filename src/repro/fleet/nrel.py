"""The NREL-dataset facade.

The paper evaluates on driving records released by the National Renewable
Energy Laboratory: 217 vehicles in California, 312 in Chicago and 653 in
Atlanta, one week each.  That data is not redistributable and this
environment has no network access, so this module is the documented
**substitution**: it synthesizes fleets with the properties the paper
itself reports about the data —

* heavy-tailed stop-length distributions that fail the KS exponentiality
  test (Figure 3);
* similar distribution shapes across areas with different means
  (Section 5);
* stops/day moments per Table 1;
* per-vehicle heterogeneity broad enough that the proposed selector
  picks different vertex strategies for different vehicles (Figure 4's
  win-count analysis).

Everything downstream consumes only per-vehicle stop-length samples, so
swapping in the real dataset would be a one-function change
(:func:`load_fleets` is the only entry point).
"""

from __future__ import annotations

import numpy as np

from ..validation import Policy, PolicyEnforcer, ValidationReport
from .areas import AREAS, area_config
from .generator import FleetGenerator, VehicleRecord

__all__ = [
    "load_fleets",
    "load_fleets_or_dataset",
    "load_area",
    "total_vehicle_count",
    "validate_fleets",
    "DEFAULT_SEED",
]

#: Default dataset seed: fixed so every experiment sees the same fleets.
DEFAULT_SEED = 20140601  # DAC'14 was June 1-5, 2014.


def load_area(
    name: str,
    seed: int = DEFAULT_SEED,
    vehicle_count: int | None = None,
    jobs: int | None = None,
) -> list[VehicleRecord]:
    """Load (synthesize) one area's fleet.

    The per-area generator seed mixes the dataset seed with a stable
    per-area offset so areas are independent but reproducible.  ``jobs``
    fans vehicle generation out over worker processes without changing
    the fleet (per-vehicle seed children).
    """
    config = area_config(name)
    offset = sorted(AREAS).index(config.name)
    generator = FleetGenerator(config, seed=seed + offset)
    return generator.generate(vehicle_count, jobs=jobs)


def load_fleets(
    seed: int = DEFAULT_SEED,
    vehicles_per_area: int | None = None,
    jobs: int | None = None,
) -> dict[str, list[VehicleRecord]]:
    """Load all three areas: ``{area_name: [VehicleRecord, ...]}``.

    ``vehicles_per_area`` overrides every area's fleet size (useful for
    fast tests); None reproduces the paper's 217/312/653 split.  The
    generated fleets are passed through :func:`validate_fleets` in
    strict mode — a cheap invariant check that the substitution dataset
    honours the same contract real data must (non-empty vehicles,
    finite non-negative stops, unique ids).
    """
    fleets = {
        name: load_area(name, seed=seed, vehicle_count=vehicles_per_area, jobs=jobs)
        for name in AREAS
    }
    validate_fleets(fleets)
    return fleets


def load_fleets_or_dataset(
    dataset: str | None = None,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
    seed: int = DEFAULT_SEED,
    vehicles_per_area: int | None = None,
    jobs: int | None = None,
) -> dict[str, list["VehicleRecord"]]:
    """Load fleets from an on-disk dataset, or synthesize them.

    The experiment-facing switch: ``dataset=None`` synthesizes via
    :func:`load_fleets` (clean by construction, so ``policy`` is moot);
    a dataset directory goes through
    :func:`~repro.fleet.io.load_fleet_dataset` under ``policy``, so
    experiments can run directly on repaired or quarantined real data.
    ``vehicles_per_area`` truncates each area deterministically (manifest
    order), mirroring the synthesis override.
    """
    if dataset is None:
        return load_fleets(seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs)
    from .io import load_fleet_dataset

    fleets = load_fleet_dataset(dataset, policy=policy, report=report)
    if vehicles_per_area is not None:
        fleets = {
            area: vehicles[:vehicles_per_area] for area, vehicles in fleets.items()
        }
    return fleets


def validate_fleets(
    fleets: dict[str, list[VehicleRecord]],
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
) -> dict[str, list[VehicleRecord]]:
    """Validate in-memory fleets against the dataset contract.

    Checks every vehicle for non-finite or negative stop lengths and
    emptiness, and vehicle ids for uniqueness across areas.  ``strict``
    raises :class:`~repro.errors.DataValidationError`; ``repair`` /
    ``quarantine`` drop offending vehicles (in-memory, so both behave
    as ``repair``) and return the cleaned fleets.  The input dict is
    not mutated.
    """
    enforcer = PolicyEnforcer(policy, report, "fleets")
    cleaned: dict[str, list[VehicleRecord]] = {}
    seen: set[str] = set()
    for area, vehicles in fleets.items():
        kept = []
        for vehicle in vehicles:
            enforcer.report.records_checked += 1
            y = np.asarray(vehicle.stop_lengths, dtype=float)
            if vehicle.vehicle_id in seen:
                if not enforcer.flag(
                    "duplicate-vehicle-id",
                    f"area {area!r}: vehicle {vehicle.vehicle_id!r} already present",
                ):
                    continue
            seen.add(vehicle.vehicle_id)
            if y.size == 0:
                if not enforcer.flag(
                    "empty-vehicle",
                    f"area {area!r}: vehicle {vehicle.vehicle_id!r} has no stops",
                ):
                    continue
            elif np.any(~np.isfinite(y)) or np.any(y < 0.0):
                if not enforcer.flag(
                    "non-finite-duration",
                    f"area {area!r}: vehicle {vehicle.vehicle_id!r} has "
                    "non-finite or negative stop lengths",
                ):
                    continue
            kept.append(vehicle)
        cleaned[area] = kept
    enforcer.report.emit_to_ledger(source="fleets")
    return cleaned


def total_vehicle_count(fleets: dict[str, list[VehicleRecord]]) -> int:
    """Total vehicles across areas (paper: 1182)."""
    return int(sum(len(vehicles) for vehicles in fleets.values()))


def pooled_stops(fleets: dict[str, list[VehicleRecord]]) -> dict[str, np.ndarray]:
    """Pooled stop lengths per area (the Figure 3 histogram inputs)."""
    return {
        name: np.concatenate([vehicle.stop_lengths for vehicle in vehicles])
        for name, vehicles in fleets.items()
    }
