"""The NREL-dataset facade.

The paper evaluates on driving records released by the National Renewable
Energy Laboratory: 217 vehicles in California, 312 in Chicago and 653 in
Atlanta, one week each.  That data is not redistributable and this
environment has no network access, so this module is the documented
**substitution**: it synthesizes fleets with the properties the paper
itself reports about the data —

* heavy-tailed stop-length distributions that fail the KS exponentiality
  test (Figure 3);
* similar distribution shapes across areas with different means
  (Section 5);
* stops/day moments per Table 1;
* per-vehicle heterogeneity broad enough that the proposed selector
  picks different vertex strategies for different vehicles (Figure 4's
  win-count analysis).

Everything downstream consumes only per-vehicle stop-length samples, so
swapping in the real dataset would be a one-function change
(:func:`load_fleets` is the only entry point).
"""

from __future__ import annotations

import numpy as np

from .areas import AREAS, area_config
from .generator import FleetGenerator, VehicleRecord

__all__ = ["load_fleets", "load_area", "total_vehicle_count", "DEFAULT_SEED"]

#: Default dataset seed: fixed so every experiment sees the same fleets.
DEFAULT_SEED = 20140601  # DAC'14 was June 1-5, 2014.


def load_area(
    name: str,
    seed: int = DEFAULT_SEED,
    vehicle_count: int | None = None,
    jobs: int | None = None,
) -> list[VehicleRecord]:
    """Load (synthesize) one area's fleet.

    The per-area generator seed mixes the dataset seed with a stable
    per-area offset so areas are independent but reproducible.  ``jobs``
    fans vehicle generation out over worker processes without changing
    the fleet (per-vehicle seed children).
    """
    config = area_config(name)
    offset = sorted(AREAS).index(config.name)
    generator = FleetGenerator(config, seed=seed + offset)
    return generator.generate(vehicle_count, jobs=jobs)


def load_fleets(
    seed: int = DEFAULT_SEED,
    vehicles_per_area: int | None = None,
    jobs: int | None = None,
) -> dict[str, list[VehicleRecord]]:
    """Load all three areas: ``{area_name: [VehicleRecord, ...]}``.

    ``vehicles_per_area`` overrides every area's fleet size (useful for
    fast tests); None reproduces the paper's 217/312/653 split.
    """
    return {
        name: load_area(name, seed=seed, vehicle_count=vehicles_per_area, jobs=jobs)
        for name in AREAS
    }


def total_vehicle_count(fleets: dict[str, list[VehicleRecord]]) -> int:
    """Total vehicles across areas (paper: 1182)."""
    return int(sum(len(vehicles) for vehicles in fleets.values()))


def pooled_stops(fleets: dict[str, list[VehicleRecord]]) -> dict[str, np.ndarray]:
    """Pooled stop lengths per area (the Figure 3 histogram inputs)."""
    return {
        name: np.concatenate([vehicle.stop_lengths for vehicle in vehicles])
        for name, vehicles in fleets.items()
    }
