"""Per-area fleet configurations calibrated to the paper's description.

The paper evaluates on NREL driving records from three areas; we cannot
redistribute that data, so each area is described by:

* the vehicle count used in the Figure 4 evaluation (California 217,
  Chicago 312, Atlanta 653 — Section 5);
* stops-per-day statistics matching Table 1 (note Table 1's vehicle
  counts differ from Section 5's; we follow Section 5 for fleet sizes and
  Table 1 for the stops/day moments);
* a heavy-tailed stop-length mixture:

  - a *signal* component (lognormal, tens of seconds — red lights),
  - a *congestion* component (lognormal, around a minute — queues),
  - an *errand/parking* tail (Pareto — the heavy tail that makes the KS
    test reject exponentiality, Figure 3).

The three areas share the mixture *shape* and differ mainly in scale and
tail weight ("their shapes of the stop length distributions are quite
similar" — Section 5).  Chicago is calibrated as the signal-dominated,
short-stop area: its stops cluster near the break-even interval, which is
the hardest regime for any online strategy and is why its mean CR in
Figure 4 (1.32 for SSV) is visibly worse than California's and Atlanta's
(1.11 / 1.10).  Chicago also records the most stops per day (Table 1),
consistent with dense signalized urban driving.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributions import LogNormal, MixtureDistribution, Pareto, StopLengthDistribution
from ..errors import InvalidParameterError

__all__ = ["AreaConfig", "AREAS", "area_config", "AREA_NAMES"]


@dataclass(frozen=True)
class AreaConfig:
    """Configuration of one metropolitan area's synthetic fleet.

    Attributes
    ----------
    name:
        Area label.
    vehicle_count:
        Number of vehicles (Section 5 counts).
    stops_per_day_mean, stops_per_day_std:
        Table 1 moments of the per-vehicle stops/day statistic.
    signal_mu, signal_sigma:
        Lognormal parameters of the signal-stop component (seconds).
    congestion_mu, congestion_sigma:
        Lognormal parameters of the congestion-stop component.
    tail_alpha, tail_scale:
        Pareto parameters of the errand/parking tail.
    weights:
        Mixture weights (signal, congestion, tail).
    vehicle_scale_sigma:
        Lognormal sigma of the per-vehicle stop-length scale factor
        (driver heterogeneity).
    recording_days:
        Length of each vehicle's record (the paper records one week).
    """

    name: str
    vehicle_count: int
    stops_per_day_mean: float
    stops_per_day_std: float
    signal_mu: float
    signal_sigma: float
    congestion_mu: float
    congestion_sigma: float
    tail_alpha: float
    tail_scale: float
    weights: tuple[float, float, float]
    vehicle_scale_sigma: float = 0.25
    recording_days: float = 7.0

    def stop_length_distribution(self) -> StopLengthDistribution:
        """The area-level stop-length mixture."""
        mixture = MixtureDistribution(
            [
                LogNormal(self.signal_mu, self.signal_sigma),
                LogNormal(self.congestion_mu, self.congestion_sigma),
                Pareto(alpha=self.tail_alpha, scale=self.tail_scale),
            ],
            list(self.weights),
            name=f"{self.name}-stop-mixture",
        )
        return mixture


#: Table 1 stops/day moments: Atlanta (10.37, 8.42), Chicago (12.49, 9.97),
#: California (9.37, 7.68).  Mixture parameters are calibrated so that the
#: resulting fleets reproduce the *shape* facts the paper reports: heavy
#: non-exponential tails, similar shapes across areas, Chicago the slowest
#: traffic, and Figure 4's strategy ordering.
AREAS: dict[str, AreaConfig] = {
    "california": AreaConfig(
        name="california",
        vehicle_count=217,
        stops_per_day_mean=9.37,
        stops_per_day_std=7.68,
        signal_mu=3.55,
        signal_sigma=0.55,
        congestion_mu=4.3,
        congestion_sigma=0.6,
        tail_alpha=1.7,
        tail_scale=400.0,
        weights=(0.47, 0.35, 0.18),
    ),
    "chicago": AreaConfig(
        name="chicago",
        vehicle_count=312,
        stops_per_day_mean=12.49,
        stops_per_day_std=9.97,
        signal_mu=3.0,
        signal_sigma=0.65,
        congestion_mu=3.8,
        congestion_sigma=0.6,
        tail_alpha=1.8,
        tail_scale=340.0,
        weights=(0.62, 0.28, 0.10),
    ),
    "atlanta": AreaConfig(
        name="atlanta",
        vehicle_count=653,
        stops_per_day_mean=10.37,
        stops_per_day_std=8.42,
        signal_mu=3.5,
        signal_sigma=0.55,
        congestion_mu=4.25,
        congestion_sigma=0.6,
        tail_alpha=1.75,
        tail_scale=380.0,
        weights=(0.48, 0.35, 0.17),
    ),
}

AREA_NAMES = tuple(AREAS)


def area_config(name: str) -> AreaConfig:
    """Look up an area configuration by (case-insensitive) name."""
    key = name.lower()
    if key not in AREAS:
        raise InvalidParameterError(
            f"unknown area {name!r}; available: {', '.join(AREAS)}"
        )
    return AREAS[key]
