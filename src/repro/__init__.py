"""repro — reproduction of "A Cost Efficient Online Algorithm for
Automotive Idling Reduction" (Dong, Zeng, Chen; DAC 2014).

The package implements the paper end to end:

* :mod:`repro.core` — the ski-rental cost model, the baseline strategies
  (NEV, TOI, DET, N-Rand, MOM-Rand) and the proposed constrained
  ski-rental algorithm;
* :mod:`repro.distributions` — the stop-length distribution toolkit;
* :mod:`repro.traces` / :mod:`repro.drivecycle` — driving traces, stop
  extraction and a synthetic drive-cycle generator;
* :mod:`repro.fleet` — NREL-like per-area fleet synthesis;
* :mod:`repro.vehicle` — the Appendix C cost model (break-even interval);
* :mod:`repro.simulation` — event-level stop-start controller simulation;
* :mod:`repro.evaluation` — the competitive-analysis harness;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import ProposedOnline, B_SSV
>>> stops = np.array([12.0, 45.0, 8.0, 130.0, 22.0, 300.0])
>>> strategy = ProposedOnline.from_samples(stops, break_even=B_SSV)
>>> strategy.selected_name in {"TOI", "DET", "b-DET", "N-Rand"}
True
>>> strategy.worst_case_cr <= np.e / (np.e - 1) + 1e-12
True
"""

from .constants import B_CONVENTIONAL, B_SSV, E_RATIO
from .core import (
    BDet,
    ConstrainedSkiRentalSolver,
    Deterministic,
    MOMRand,
    NeverOff,
    NRand,
    ProposedOnline,
    StopStatistics,
    Strategy,
    TurnOffImmediately,
    competitive_ratio,
    empirical_cr,
    expected_cr,
    offline_cost,
    online_cost,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "B_SSV",
    "B_CONVENTIONAL",
    "E_RATIO",
    "ReproError",
    "offline_cost",
    "online_cost",
    "competitive_ratio",
    "StopStatistics",
    "Strategy",
    "NeverOff",
    "TurnOffImmediately",
    "Deterministic",
    "BDet",
    "NRand",
    "MOMRand",
    "ConstrainedSkiRentalSolver",
    "ProposedOnline",
    "expected_cr",
    "empirical_cr",
]
