"""Out-of-sample Figure 4 (reproduction methodology extension).

The paper evaluates strategies on the stops their statistics came from.
This experiment re-runs the Figure 4 protocol with a chronological
train/test split per vehicle and reports both protocols side by side —
quantifying how much estimation optimism the in-sample numbers carry
(on the synthetic fleets: a few thousandths of a CR).
"""

from __future__ import annotations

import time

from ..constants import B_CONVENTIONAL, B_SSV
from ..engine import Instrumentation
from ..evaluation import STRATEGY_NAMES, compare_in_vs_out_of_sample
from ..fleet import DEFAULT_SEED, load_fleets
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(
    vehicles_per_area: int | None = None,
    seed: int = DEFAULT_SEED,
    train_fraction: float = 0.5,
    break_evens: tuple[float, ...] = (B_SSV, B_CONVENTIONAL),
    jobs: int | None = None,
) -> ExperimentResult:
    """Run the paired in-sample / out-of-sample comparison."""
    instrumentation = Instrumentation()
    start = time.perf_counter()
    fleets = load_fleets(seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs)
    instrumentation.add(
        "synthesize fleets",
        time.perf_counter() - start,
        sum(len(v) for v in fleets.values()),
    )
    rows = []
    notes = []
    stage_start = time.perf_counter()
    for break_even in break_evens:
        for area in sorted(fleets):
            comparisons = compare_in_vs_out_of_sample(
                fleets[area], break_even, train_fraction
            )
            for comparison in comparisons:
                rows.append(
                    (
                        break_even,
                        area,
                        comparison.strategy,
                        round(comparison.in_sample_mean_cr, 4),
                        round(comparison.out_of_sample_mean_cr, 4),
                        round(comparison.optimism, 4),
                        comparison.in_sample_wins,
                        comparison.out_of_sample_wins,
                    )
                )
            proposed = next(c for c in comparisons if c.strategy == "Proposed")
            notes.append(
                f"B={break_even:g} {area}: proposed optimism "
                f"{proposed.optimism:+.4f} CR "
                f"(wins {proposed.in_sample_wins} -> {proposed.out_of_sample_wins})"
            )
    instrumentation.add(
        "train/test comparison",
        time.perf_counter() - stage_start,
        len(break_evens) * len(fleets),
    )
    return ExperimentResult(
        experiment_id="holdout",
        title="Out-of-sample Figure 4: train/test split per vehicle",
        tables=[
            Table(
                name="comparison",
                headers=(
                    "break_even",
                    "area",
                    "strategy",
                    "in_sample_mean_cr",
                    "out_of_sample_mean_cr",
                    "optimism",
                    "in_wins",
                    "out_wins",
                ),
                rows=rows,
            )
        ],
        notes=notes,
        timings=instrumentation.timings,
    )
