"""Figure 4: per-vehicle CR comparison across strategies and areas.

Top row of the paper's figure: SSV (``B = 28 s``); bottom row:
conventional vehicles (``B = 47 s``).  Per area and per ``B`` we report
each strategy's worst-case CR (largest over vehicles) and average CR,
plus the win counts the paper quotes in the text:

* B=28: proposed best on 1169 / 1182 vehicles; mean CR 1.11 / 1.32 / 1.10
  (California / Chicago / Atlanta);
* B=47: best on 977 / 1182; mean CR 1.35 / 1.42 / 1.35.
"""

from __future__ import annotations

import time

from ..constants import B_CONVENTIONAL, B_SSV
from ..engine import Instrumentation
from ..evaluation import STRATEGY_NAMES, evaluate_fleet
from ..fleet import DEFAULT_SEED, load_fleets_or_dataset, total_vehicle_count
from .report import ExperimentResult, Table

__all__ = ["run", "PAPER_MEAN_CR"]

#: The paper's reported mean CRs for the proposed strategy, per area.
PAPER_MEAN_CR = {
    B_SSV: {"california": 1.11, "chicago": 1.32, "atlanta": 1.10},
    B_CONVENTIONAL: {"california": 1.35, "chicago": 1.42, "atlanta": 1.35},
}

#: The paper's win counts (vehicles where the proposed strategy is best).
PAPER_WIN_COUNTS = {B_SSV: 1169, B_CONVENTIONAL: 977}


def run(
    vehicles_per_area: int | None = None,
    seed: int = DEFAULT_SEED,
    break_evens: tuple[float, ...] = (B_SSV, B_CONVENTIONAL),
    with_significance: bool = True,
    jobs: int | None = None,
    dataset: str | None = None,
    policy: str = "strict",
) -> ExperimentResult:
    """Reproduce Figure 4.

    ``vehicles_per_area=None`` uses the full 217/312/653 fleets (the
    paper's 1182 vehicles); pass a small number for a fast preview.
    ``with_significance`` adds Wilson win-rate intervals and paired
    bootstrap CR-difference CIs to the notes.  ``jobs`` fans fleet
    synthesis and per-vehicle evaluation out over worker processes
    without changing any number.  ``dataset`` evaluates an on-disk
    fleet dataset (see :func:`repro.fleet.load_fleet_dataset`) instead
    of synthesizing, ingested under validation ``policy``.
    """
    import numpy as np

    from ..evaluation.significance import compare_strategies, win_rate_interval

    instrumentation = Instrumentation()
    start = time.perf_counter()
    fleets = load_fleets_or_dataset(
        dataset, policy, seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs
    )
    total = total_vehicle_count(fleets)
    instrumentation.add("synthesize fleets", time.perf_counter() - start, total)
    cr_rows = []
    win_rows = []
    notes = []
    significance_rng = np.random.default_rng(seed)
    for break_even in break_evens:
        stage_start = time.perf_counter()
        total_proposed_wins = 0
        for area in sorted(fleets):
            evaluation = evaluate_fleet(fleets[area], break_even, jobs=jobs)
            if with_significance:
                for diff in compare_strategies(
                    evaluation, rng=significance_rng, n_bootstrap=500
                ):
                    if diff.other in {"DET", "N-Rand"}:
                        notes.append(
                            f"B={break_even:g} {area}: mean CR({diff.other}) - "
                            f"mean CR(Proposed) = {diff.mean_difference:+.3f} "
                            f"[{diff.ci_low:+.3f}, {diff.ci_high:+.3f}]"
                            f"{' (significant)' if diff.significant else ''}"
                        )
            for name in STRATEGY_NAMES:
                cr_rows.append(
                    (
                        break_even,
                        area,
                        name,
                        round(evaluation.worst_cr(name), 4),
                        round(evaluation.mean_cr(name), 4),
                    )
                )
            wins = evaluation.win_counts()
            total_proposed_wins += wins["Proposed"]
            win_rows.append(
                (
                    break_even,
                    area,
                    evaluation.vehicle_count,
                    *(wins[name] for name in STRATEGY_NAMES),
                )
            )
            paper_mean = PAPER_MEAN_CR.get(break_even, {}).get(area)
            if paper_mean is not None:
                notes.append(
                    f"B={break_even:g} {area}: proposed mean CR "
                    f"{evaluation.mean_cr('Proposed'):.3f} (paper: {paper_mean})"
                )
        paper_wins = PAPER_WIN_COUNTS.get(break_even)
        if paper_wins is not None:
            suffix = ""
            if with_significance:
                _, low, high = win_rate_interval(total_proposed_wins, total)
                suffix = f"; win-rate 95% CI [{low:.3f}, {high:.3f}]"
            notes.append(
                f"B={break_even:g}: proposed best on {total_proposed_wins}/{total} "
                f"vehicles (paper: {paper_wins}/1182){suffix}"
            )
        instrumentation.add(
            f"evaluate B={break_even:g}", time.perf_counter() - stage_start, total
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="Individual vehicle test: worst/mean CR per strategy, area and B",
        tables=[
            Table(
                name="cr",
                headers=("break_even", "area", "strategy", "worst_cr", "mean_cr"),
                rows=cr_rows,
            ),
            Table(
                name="win counts",
                headers=("break_even", "area", "vehicles", *STRATEGY_NAMES),
                rows=win_rows,
            ),
        ],
        notes=notes,
        timings=instrumentation.timings,
    )
