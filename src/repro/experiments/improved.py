"""Corrected Figure 1: strategy regions with the b-Rand family included.

Not a paper artifact — the reproduction's own result (see EXPERIMENTS.md
"Discrepancy found").  Recomputes the Figure 1(a) region map and 1(b) CR
surface using the five-candidate
:class:`~repro.core.brand.ImprovedConstrainedSolver` and reports where
and by how much the corrected solution beats the paper's four-vertex
optimum.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..core.brand import ImprovedConstrainedSolver
from ..core.regions import cr_slice
from ..core.stats import StopStatistics
from ..engine import Instrumentation, ParallelMap
from ..errors import InvalidParameterError
from .report import ExperimentResult, Table

__all__ = ["run"]


def _corrected_slice(normalized_mu: float, points: int, break_even: float) -> Table:
    """A Figure 2(c/d)-style slice with the b-Rand curve added: the
    paper's four vertex CRs, b-Rand's, and the corrected lower envelope."""
    series = cr_slice(
        break_even=break_even, fixed_normalized_mu=normalized_mu, points=points
    )
    rows = []
    for index, q in enumerate(series["axis"]):
        stats = StopStatistics(normalized_mu * break_even, float(q), break_even)
        selection = ImprovedConstrainedSolver(stats).select()
        b_rand_cr = selection.b_rand_cost / stats.expected_offline_cost
        rows.append(
            (
                round(float(q), 6),
                *(
                    round(float(series[name][index]), 6)
                    if np.isfinite(series[name][index])
                    else ""
                    for name in ("TOI", "DET", "b-DET", "N-Rand")
                ),
                round(b_rand_cr, 6),
                round(selection.worst_case_cr, 6),
            )
        )
    return Table(
        name=f"corrected slice (mu={normalized_mu:g}B)",
        headers=("q_b_plus", "TOI", "DET", "b-DET", "N-Rand", "b-Rand", "Corrected"),
        rows=rows,
    )

_GLYPHS = {"TOI": "T", "DET": "D", "b-DET": "d", "b-Rand": "r", "N-Rand": "R"}


def _grid_row(q: float, mu_values: np.ndarray, break_even: float):
    """One fixed-q row of the corrected region grid: glyph string plus
    the per-cell (row tuple, improvement) records, feasible cells only."""
    glyphs = []
    cells = []
    for mu_norm in mu_values:
        if mu_norm > (1.0 - q) + 1e-12:
            glyphs.append(".")
            continue
        stats = StopStatistics(mu_norm * break_even, q, break_even)
        selection = ImprovedConstrainedSolver(stats).select()
        glyphs.append(_GLYPHS[selection.chosen_name])
        cells.append(
            (
                (
                    round(float(mu_norm), 6),
                    round(float(q), 6),
                    selection.paper_selection.name,
                    selection.chosen_name,
                    round(selection.paper_selection.worst_case_cr, 6),
                    round(selection.worst_case_cr, 6),
                    round(selection.improvement_over_paper, 6),
                ),
                selection.chosen_name,
                selection.improvement_over_paper,
            )
        )
    return "".join(glyphs), cells


def run(
    mu_points: int = 61,
    q_points: int = 61,
    break_even: float = 1.0,
    jobs: int | None = None,
) -> ExperimentResult:
    """Compute the corrected region map and the improvement heatmap."""
    if mu_points < 2 or q_points < 2:
        raise InvalidParameterError("grids need at least 2 points per axis")
    instrumentation = Instrumentation()
    mu_values = np.linspace(0.0, 1.0, mu_points + 1, endpoint=False)[1:]
    q_values = np.linspace(0.0, 1.0, q_points + 1, endpoint=False)[1:]
    rows = []
    glyph_rows = []
    improvements = []
    region_counts: dict[str, int] = {}
    with instrumentation.stage("corrected region grid", tasks=q_values.size):
        worker = partial(_grid_row, mu_values=mu_values, break_even=break_even)
        row_results = ParallelMap(jobs, label="improved-grid").map(
            worker, q_values[::-1].tolist()
        )
    for glyphs, cells in row_results:
        glyph_rows.append(glyphs)
        for row, chosen_name, improvement in cells:
            rows.append(row)
            region_counts[chosen_name] = region_counts.get(chosen_name, 0) + 1
            improvements.append(improvement)
    improvements = np.asarray(improvements)
    total = sum(region_counts.values())
    fraction_rows = [
        (name, count, round(count / total, 4))
        for name, count in sorted(region_counts.items())
    ]
    legend = "  ".join(f"{glyph}={name}" for name, glyph in _GLYPHS.items())
    with instrumentation.stage("corrected slices", tasks=2):
        corrected_slices = [
            _corrected_slice(mu, max(40, q_points), break_even)
            for mu in (0.02, 0.05)
        ]
    return ExperimentResult(
        experiment_id="improved",
        title="Corrected strategy regions with the b-Rand family (reproduction finding)",
        tables=[
            Table(
                name="grid",
                headers=(
                    "normalized_mu",
                    "q_b_plus",
                    "paper_choice",
                    "improved_choice",
                    "paper_cr",
                    "improved_cr",
                    "improvement",
                ),
                rows=rows,
            ),
            Table(
                name="region counts",
                headers=("strategy", "cells", "fraction"),
                rows=fraction_rows,
            ),
            *corrected_slices,
        ],
        notes=[
            f"cells strictly improved over the paper: "
            f"{(improvements > 1e-9).mean():.1%} of the feasible plane",
            f"largest CR improvement: {improvements.max():.4f}",
            "corrected region map (q_B_plus increases upward):",
            *glyph_rows,
            legend + "  .=infeasible",
        ],
        timings=instrumentation.timings,
    )
