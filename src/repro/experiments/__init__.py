"""One module per paper artifact, plus the experiment registry.

Every experiment exposes ``run(**params) -> ExperimentResult``; the
registry maps experiment ids (``fig1`` ... ``fig6``, ``table1``,
``appc``) to those callables for the CLI and the benchmarks.  All
experiments accept a ``jobs`` parameter (worker processes for the
parallel engine; results are bit-identical for every value) and report
per-stage wall times in their result.

:func:`cached_run` is the caching entry point the CLI uses: results are
stored in the content-addressed on-disk cache
(:mod:`repro.engine.cache`), keyed by experiment id, parameters and
code version, so repeated invocations skip recomputation entirely.
"""

from __future__ import annotations

import time

from . import (
    appendix_c,
    fig1,
    fig2,
    fig3,
    fig4,
    holdout_fig4,
    improved,
    seeds,
    sweeps,
    table1,
)
from ..engine.cache import ResultCache, cache_key
from ..engine.instrument import StageTiming
from ..engine.ledger import active_ledger
from .report import ExperimentResult, Table, format_table

__all__ = [
    "ExperimentResult",
    "Table",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
    "cached_run",
]

#: Registry: experiment id -> run callable.
EXPERIMENTS = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": sweeps.run_fig5,
    "fig6": sweeps.run_fig6,
    "table1": table1.run,
    "appc": appendix_c.run,
    # not paper artifacts: the reproduction's own studies
    "improved": improved.run,
    "holdout": holdout_fig4.run,
    "seeds": seeds.run,
}


def run_experiment(experiment_id: str, **params) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`).

    Appends a ``total`` stage timing so even experiments without
    internal stages report their wall time.
    """
    if experiment_id not in EXPERIMENTS:
        from ..errors import InvalidParameterError

        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    start = time.perf_counter()
    result = EXPERIMENTS[experiment_id](**params)
    result.timings.append(
        StageTiming(stage="total", seconds=time.perf_counter() - start)
    )
    return result


def cached_run(
    experiment_id: str,
    params: dict | None = None,
    *,
    jobs: int | None = None,
    use_cache: bool = True,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Run an experiment through the on-disk result cache.

    ``jobs`` is deliberately excluded from the cache key: the engine
    guarantees results are bit-identical for every worker count, so a
    serial run may serve a later ``--jobs 8`` invocation and vice versa.
    Underscore-prefixed params (e.g. ``_dataset_digest``, a content hash
    of an on-disk dataset) are the reverse: they salt the cache key but
    are stripped before the experiment runs — the experiment reads the
    dataset itself, the key just has to change when the bytes do.
    On a hit the stored payload is returned verbatim (its ``timings``
    are the original run's); on a miss the experiment runs and its
    payload is stored atomically.
    """
    if jobs is not None and jobs < 1:
        from ..errors import InvalidParameterError

        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    params = dict(params or {})
    params.pop("jobs", None)
    run_params = {k: v for k, v in params.items() if not k.startswith("_")}
    if not use_cache:
        return run_experiment(experiment_id, **run_params, jobs=jobs)
    if cache is None:
        cache = ResultCache()
    key = cache_key(experiment_id, params)
    payload = cache.get(key)
    ledger = active_ledger()
    if payload is not None:
        if ledger is not None:
            ledger.emit("cache-hit", experiment=experiment_id, key=key)
        return ExperimentResult.from_payload(payload)
    if ledger is not None:
        ledger.emit("cache-miss", experiment=experiment_id, key=key)
    result = run_experiment(experiment_id, **run_params, jobs=jobs)
    cache.put(key, result.to_payload())
    return result
