"""One module per paper artifact, plus the experiment registry.

Every experiment exposes ``run(**params) -> ExperimentResult``; the
registry maps experiment ids (``fig1`` ... ``fig6``, ``table1``,
``appc``) to those callables for the CLI and the benchmarks.
"""

from . import (
    appendix_c,
    fig1,
    fig2,
    fig3,
    fig4,
    holdout_fig4,
    improved,
    seeds,
    sweeps,
    table1,
)
from .report import ExperimentResult, Table, format_table

__all__ = [
    "ExperimentResult",
    "Table",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
]

#: Registry: experiment id -> run callable.
EXPERIMENTS = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": sweeps.run_fig5,
    "fig6": sweeps.run_fig6,
    "table1": table1.run,
    "appc": appendix_c.run,
    # not paper artifacts: the reproduction's own studies
    "improved": improved.run,
    "holdout": holdout_fig4.run,
    "seeds": seeds.run,
}


def run_experiment(experiment_id: str, **params) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    if experiment_id not in EXPERIMENTS:
        from ..errors import InvalidParameterError

        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**params)
