"""Experiment result containers and report writers.

matplotlib is not available in the offline environment, so every figure
is emitted as (a) an ASCII table on stdout and (b) CSV series ready to be
plotted elsewhere.  Each experiment module returns an
:class:`ExperimentResult` holding one or more named tables, plus the
per-stage :class:`~repro.engine.instrument.StageTiming` records its run
collected.

Results round-trip losslessly through a plain-JSON payload
(:meth:`ExperimentResult.to_payload` / ``from_payload``) — the storage
format of the on-disk result cache (:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..engine.instrument import StageTiming
from ..errors import InvalidParameterError

__all__ = ["Table", "ExperimentResult", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _plain(value):
    """Coerce numpy scalars to the built-in types JSON can store."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an ASCII table with padded columns."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    def line(cells):
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
    separator = "-+-".join("-" * width for width in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


@dataclass
class Table:
    """One named table of an experiment."""

    name: str
    headers: tuple[str, ...]
    rows: list[tuple]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise InvalidParameterError(
                    f"table {self.name!r}: row {row!r} does not match headers {self.headers!r}"
                )

    def to_ascii(self) -> str:
        return format_table(self.headers, self.rows)

    def write_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)

    def to_payload(self) -> dict:
        """Plain-JSON form (tuples become lists, numpy scalars built-ins)."""
        return {
            "name": self.name,
            "headers": list(self.headers),
            "rows": [[_plain(cell) for cell in row] for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Table":
        return cls(
            name=payload["name"],
            headers=tuple(payload["headers"]),
            rows=[tuple(row) for row in payload["rows"]],
        )


@dataclass
class ExperimentResult:
    """Everything one paper artifact's reproduction produced."""

    experiment_id: str
    title: str
    tables: list[Table]
    notes: list[str] = field(default_factory=list)
    timings: list[StageTiming] = field(default_factory=list)

    def table(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise InvalidParameterError(
            f"experiment {self.experiment_id!r} has no table {name!r}; "
            f"available: {[t.name for t in self.tables]}"
        )

    def to_ascii(self, include_timings: bool = True) -> str:
        """Full textual report.

        ``include_timings=False`` drops the wall-time section, which the
        benchmark emitters use to keep the stored report files
        deterministic across regenerations.
        """
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            parts.append(f"  note: {note}")
        for table in self.tables:
            parts.append(f"\n-- {table.name} --")
            parts.append(table.to_ascii())
        if include_timings and self.timings:
            parts.append("\n-- timings --")
            rows = [
                (t.stage, round(t.seconds, 4), t.tasks if t.tasks is not None else "")
                for t in self.timings
            ]
            parts.append(format_table(("stage", "seconds", "tasks"), rows))
        return "\n".join(parts)

    def write_csvs(self, directory: str | Path) -> list[Path]:
        """Write every table as ``<experiment_id>_<table>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for table in self.tables:
            safe = table.name.replace(" ", "_").replace("/", "-")
            path = directory / f"{self.experiment_id}_{safe}.csv"
            table.write_csv(path)
            paths.append(path)
        return paths

    def to_payload(self) -> dict:
        """Plain-JSON form of the whole result (the cache storage format)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [table.to_payload() for table in self.tables],
            "notes": list(self.notes),
            "timings": [timing.to_payload() for timing in self.timings],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentResult":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            tables=[Table.from_payload(table) for table in payload["tables"]],
            notes=list(payload["notes"]),
            timings=[StageTiming.from_payload(t) for t in payload.get("timings", [])],
        )
