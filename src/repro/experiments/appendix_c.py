"""Appendix C: derivation of the break-even interval B.

Rebuilds the component table — idling cost per second, restart fuel,
starter wear, battery wear, emissions — for the SSV and conventional
presets and checks the rollup against the paper's headline estimates
(B = 28 s for SSV, 47 s for conventional vehicles).
"""

from __future__ import annotations

from ..constants import B_CONVENTIONAL, B_SSV
from ..vehicle import (
    ARGONNE_MEASUREMENTS,
    conventional_cost_model,
    ssv_cost_model,
)
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(jobs: int | None = None) -> ExperimentResult:
    """Reproduce the Appendix C derivation.

    ``jobs`` is accepted for engine/CLI uniformity and ignored: the
    derivation is two closed-form cost-model rollups.
    """
    del jobs
    models = {
        "SSV": (ssv_cost_model(), B_SSV),
        "conventional": (conventional_cost_model(), B_CONVENTIONAL),
    }
    component_rows = []
    summary_rows = []
    for name, (model, paper_b) in models.items():
        breakdown = model.breakdown()
        for component, seconds in breakdown.as_rows():
            component_rows.append((name, component, round(seconds, 2)))
        summary_rows.append(
            (
                name,
                round(breakdown.idling_cost_cents_per_s, 5),
                round(breakdown.total_seconds, 2),
                paper_b,
                round(model.restart_cost_cents(), 4),
            )
        )
    emission_rows = [
        (
            species,
            round(ARGONNE_MEASUREMENTS.restart_equivalent_idle_seconds(species), 1),
        )
        for species in ("thc", "nox", "co")
    ]
    return ExperimentResult(
        experiment_id="appc",
        title="Appendix C: break-even interval derivation",
        tables=[
            Table(
                name="components",
                headers=("vehicle", "component", "equivalent_idling_seconds"),
                rows=component_rows,
            ),
            Table(
                name="summary",
                headers=(
                    "vehicle",
                    "idling_cost_cents_per_s",
                    "computed_B_s",
                    "paper_B_s",
                    "restart_cost_cents",
                ),
                rows=summary_rows,
            ),
            Table(
                name="emission equivalents",
                headers=("species", "restart_equals_idling_seconds"),
                rows=emission_rows,
            ),
        ],
        notes=[
            "idling cost 0.0258 cents/s matches the paper's Eq. 46 number "
            "(0.279 cc/s at $3.5/gallon)",
            "the paper floors the component sums (28.96 -> 28, 48.34 -> 47); "
            "the conventional gap also reflects rounding in its starter bound",
        ],
    )
