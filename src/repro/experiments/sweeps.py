"""Figures 5 and 6: worst-case CR under swept traffic conditions.

Both figures use the Chicago-shaped stop-length distribution with its
mean scaled over a range of "traffic conditions"; Figure 5 evaluates SSV
(``B = 28``), Figure 6 conventional vehicles (``B = 47``).  We emit both
evaluation modes (see :mod:`repro.evaluation.sweep`): the simulated
worst-over-vehicles CR (the paper's plotted quantity) and the analytic
worst-case-over-Q guarantee curves.

Expected shape: DET good at short means and degrading toward 2; TOI poor
at short means and approaching 1; N-Rand flat at e/(e-1); the proposed
curve below everything at every mean.
"""

from __future__ import annotations

import os

import numpy as np

from ..constants import B_CONVENTIONAL, B_SSV
from ..engine import Instrumentation, ResultCache
from ..evaluation import STRATEGY_NAMES, sweep_analytic, sweep_simulated
from ..fleet.areas import area_config
from .report import ExperimentResult, Table

__all__ = ["run_fig5", "run_fig6", "DEFAULT_MEANS"]

#: Set (non-empty, not "0") to spill per-point sweep results through the
#: result cache so an interrupted sweep resumes instead of restarting.
CHECKPOINT_ENV_VAR = "REPRO_CHECKPOINT"


def _checkpoint_cache() -> ResultCache | None:
    flag = os.environ.get(CHECKPOINT_ENV_VAR, "").strip()
    if not flag or flag == "0":
        return None
    return ResultCache()

#: Swept mean stop lengths (seconds): spans light traffic (means well
#: below either break-even) to heavy (minutes-long average stops).
DEFAULT_MEANS = (5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 300.0)


def _run(
    figure_id: str,
    break_even: float,
    means,
    vehicles_per_point: int,
    stops_per_vehicle: int,
    seed: int,
    grid_size: int,
    jobs: int | None = None,
) -> ExperimentResult:
    base = area_config("chicago").stop_length_distribution()
    instrumentation = Instrumentation()
    checkpoint_cache = _checkpoint_cache()
    point_count = len(tuple(means))
    with instrumentation.stage("simulated sweep", tasks=point_count):
        simulated = sweep_simulated(
            base,
            means,
            break_even,
            vehicles_per_point=vehicles_per_point,
            stops_per_vehicle=stops_per_vehicle,
            seed=seed,
            jobs=jobs,
            checkpoint_cache=checkpoint_cache,
        )
    with instrumentation.stage("analytic sweep", tasks=point_count):
        analytic = sweep_analytic(
            base,
            means,
            break_even,
            grid_size=grid_size,
            jobs=jobs,
            checkpoint_cache=checkpoint_cache,
        )
    tables = []
    for label, sweep in (("simulated", simulated), ("analytic", analytic)):
        rows = []
        for index, mean in enumerate(sweep.mean_stop_lengths):
            rows.append(
                (
                    round(float(mean), 2),
                    *(
                        round(float(sweep.series[name][index]), 4)
                        if np.isfinite(sweep.series[name][index])
                        else ""
                        for name in STRATEGY_NAMES
                    ),
                )
            )
        tables.append(
            Table(
                name=f"worst-case CR ({label})",
                headers=("mean_stop_length_s", *STRATEGY_NAMES),
                rows=rows,
            )
        )
    crossover = analytic.crossover_mean("DET", "TOI")
    notes = [
        "proposed is the lowest analytic curve at every mean "
        f"(checked over {len(tuple(means))} points)",
        f"DET/TOI analytic crossover near mean = {crossover:.1f} s"
        if crossover is not None
        else "DET/TOI never cross over the swept range",
    ]
    # Verify the headline claim numerically before reporting it.
    proposed = analytic.series["Proposed"]
    for name in ("TOI", "DET", "N-Rand", "MOM-Rand"):
        other = analytic.series[name]
        if not np.all(proposed <= other + 1e-9):
            notes.append(f"WARNING: proposed exceeded {name} somewhere!")
    return ExperimentResult(
        experiment_id=figure_id,
        title=f"Worst-case CR vs mean stop length (B = {break_even:g})",
        tables=tables,
        notes=notes,
        timings=instrumentation.timings,
    )


def run_fig5(
    means=DEFAULT_MEANS,
    vehicles_per_point: int = 40,
    stops_per_vehicle: int = 80,
    seed: int = 5,
    grid_size: int = 512,
    jobs: int | None = None,
) -> ExperimentResult:
    """Figure 5: the sweep at ``B = 28`` (stop-start vehicles)."""
    return _run(
        "fig5", B_SSV, means, vehicles_per_point, stops_per_vehicle, seed, grid_size,
        jobs=jobs,
    )


def run_fig6(
    means=DEFAULT_MEANS,
    vehicles_per_point: int = 40,
    stops_per_vehicle: int = 80,
    seed: int = 6,
    grid_size: int = 512,
    jobs: int | None = None,
) -> ExperimentResult:
    """Figure 6: the sweep at ``B = 47`` (no stop-start system)."""
    return _run(
        "fig6",
        B_CONVENTIONAL,
        means,
        vehicles_per_point,
        stops_per_vehicle,
        seed,
        grid_size,
        jobs=jobs,
    )
