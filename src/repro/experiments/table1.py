"""Table 1: stops per day in the three locations.

The paper reports, per area, the mean and standard deviation of the
per-vehicle stops/day statistic and ``P{X <= mu + 2 sigma}`` (0.91-0.96),
which justifies the ``mu + 2 sigma ≈ 32.43`` bound used in the battery
amortization of Appendix C.
"""

from __future__ import annotations

import time

from ..engine import Instrumentation
from ..fleet import DEFAULT_SEED, load_fleets_or_dataset, total_vehicle_count
from ..traces import stops_per_day_table
from .report import ExperimentResult, Table

__all__ = ["run", "PAPER_TABLE1"]

#: The paper's Table 1 (note: its vehicle counts differ from the
#: Section 5 evaluation counts; we synthesize with Section 5 counts and
#: compare the moments).
PAPER_TABLE1 = {
    "atlanta": {"mean": 10.37, "std": 8.42, "p": 0.9091},
    "chicago": {"mean": 12.49, "std": 9.97, "p": 0.9534},
    "california": {"mean": 9.37, "std": 7.68, "p": 0.9553},
}


def run(
    vehicles_per_area: int | None = None,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    dataset: str | None = None,
    policy: str = "strict",
) -> ExperimentResult:
    """Reproduce Table 1 on the synthetic fleets (or an on-disk
    ``dataset`` ingested under validation ``policy``)."""
    instrumentation = Instrumentation()
    start = time.perf_counter()
    fleets = load_fleets_or_dataset(
        dataset, policy, seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs
    )
    instrumentation.add(
        "synthesize fleets", time.perf_counter() - start, total_vehicle_count(fleets)
    )
    rows = []
    notes = []
    stage_start = time.perf_counter()
    for area in sorted(fleets):
        traces = [vehicle.to_trace() for vehicle in fleets[area]]
        stats = stops_per_day_table(traces)
        rows.append(
            (
                area,
                stats["vehicles"],
                round(stats["mean"], 2),
                round(stats["std"], 2),
                round(stats["p_within_2_sigma"], 4),
                round(stats["upper_bound"], 2),
            )
        )
        paper = PAPER_TABLE1[area]
        notes.append(
            f"{area}: mean {stats['mean']:.2f} (paper {paper['mean']}), "
            f"std {stats['std']:.2f} (paper {paper['std']}), "
            f"P within 2 sigma {stats['p_within_2_sigma']:.3f} (paper {paper['p']})"
        )
    instrumentation.add(
        "stops/day statistics", time.perf_counter() - stage_start, len(fleets)
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Stops per day in 3 locations",
        tables=[
            Table(
                name="stops per day",
                headers=(
                    "location",
                    "vehicles",
                    "mean",
                    "std",
                    "p_within_2_sigma",
                    "mu_plus_2sigma",
                ),
                rows=rows,
            )
        ],
        notes=notes,
        timings=instrumentation.timings,
    )
