"""Figure 3: stop-length distributions of the three areas.

The paper plots each area's stop-length probability distribution and
reports that all three fail the Kolmogorov-Smirnov exponentiality test
"mostly due to their heavy tails".  We emit the per-area histograms
(probability mass per bin), the KS results, and tail/moment diagnostics.
"""

from __future__ import annotations

import time

import numpy as np

from ..distributions import ks_test_exponential, moment_summary, tail_weight
from ..engine import Instrumentation
from ..fleet import DEFAULT_SEED, load_fleets_or_dataset, total_vehicle_count
from ..fleet.nrel import pooled_stops
from .report import ExperimentResult, Table

__all__ = ["run", "DEFAULT_BIN_EDGES"]

#: Histogram bins (seconds): dense where the mass is, coarse in the tail.
DEFAULT_BIN_EDGES = np.concatenate(
    [np.arange(0.0, 120.0, 10.0), np.arange(120.0, 300.0, 30.0), [300.0, 600.0, 1200.0, 3600.0, np.inf]]
)


def run(
    vehicles_per_area: int | None = None,
    seed: int = DEFAULT_SEED,
    bin_edges=DEFAULT_BIN_EDGES,
    jobs: int | None = None,
    dataset: str | None = None,
    policy: str = "strict",
) -> ExperimentResult:
    """Reproduce Figure 3 on the synthetic fleets.

    ``vehicles_per_area=None`` uses the paper's 217/312/653 split;
    ``jobs`` parallelizes fleet synthesis (identical fleets regardless).
    ``dataset`` analyzes an on-disk fleet dataset instead of
    synthesizing, ingested under validation ``policy``.
    """
    instrumentation = Instrumentation()
    start = time.perf_counter()
    fleets = load_fleets_or_dataset(
        dataset, policy, seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs
    )
    instrumentation.add(
        "synthesize fleets", time.perf_counter() - start, total_vehicle_count(fleets)
    )
    with instrumentation.stage("histograms + diagnostics", tasks=len(fleets)):
        stops = pooled_stops(fleets)
        edges = np.asarray(bin_edges, dtype=float)
        histogram_rows = []
        for left, right in zip(edges[:-1], edges[1:]):
            row = [round(float(left), 1), float(right) if np.isfinite(right) else "inf"]
            for area in sorted(stops):
                lengths = stops[area]
                mask = (lengths >= left) & (lengths < right)
                row.append(round(float(mask.mean()), 6))
            histogram_rows.append(tuple(row))
        diagnostics_rows = []
        for area in sorted(stops):
            lengths = stops[area]
            ks = ks_test_exponential(lengths)
            moments = moment_summary(lengths)
            diagnostics_rows.append(
                (
                    area,
                    moments["count"],
                    round(moments["mean"], 2),
                    round(moments["median"], 2),
                    round(moments["std"], 2),
                    round(ks.statistic, 4),
                    f"{ks.p_value:.3g}",
                    ks.rejected,
                    round(tail_weight(lengths), 2),
                )
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Stop-length distributions per area (histograms + KS test)",
        tables=[
            Table(
                name="histogram",
                headers=("bin_left_s", "bin_right_s", *sorted(stops)),
                rows=histogram_rows,
            ),
            Table(
                name="diagnostics",
                headers=(
                    "area",
                    "stops",
                    "mean_s",
                    "median_s",
                    "std_s",
                    "ks_statistic",
                    "ks_p_value",
                    "exponential_rejected",
                    "tail_weight",
                ),
                rows=diagnostics_rows,
            ),
        ],
        notes=[
            "paper claim reproduced: every area rejects exponentiality "
            "(heavy tails); shapes are similar across areas with different means."
        ],
        timings=instrumentation.timings,
    )
