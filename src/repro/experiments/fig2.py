"""Figure 2: projected views of the worst-case CR.

Four 1-D slices of the Figure 1(b) surface, each showing the worst-case
CR of N-Rand, DET, TOI and b-DET plus the proposed lower envelope:

* (a) constant ``q_B_plus = 0.1`` (sweep ``mu_B_minus``);
* (b) constant ``q_B_plus = 0.4``;
* (c) constant ``mu_B_minus = 0.02 B`` (sweep ``q_B_plus``) — the paper's
  explicit b-DET showcase;
* (d) constant ``mu_B_minus = 0.05 B``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..core.regions import cr_slice
from ..engine import Instrumentation, ParallelMap
from .report import ExperimentResult, Table

__all__ = ["run", "SLICES"]

#: (panel, fixed axis, value) — (c) and (d) are the paper's stated values.
SLICES = (
    ("a", "q_b_plus", 0.1),
    ("b", "q_b_plus", 0.4),
    ("c", "normalized_mu", 0.02),
    ("d", "normalized_mu", 0.05),
)


def _slice_table(panel: str, axis_name: str, value: float, points: int) -> Table:
    if axis_name == "q_b_plus":
        series = cr_slice(fixed_q_b_plus=value, points=points)
    else:
        series = cr_slice(fixed_normalized_mu=value, points=points)
    rows = []
    for index in range(series["axis"].size):
        rows.append(
            (
                round(float(series["axis"][index]), 6),
                *(
                    round(float(series[name][index]), 6)
                    if np.isfinite(series[name][index])
                    else ""
                    for name in ("TOI", "DET", "b-DET", "N-Rand", "Proposed")
                ),
            )
        )
    return Table(
        name=f"panel {panel} ({axis_name}={value})",
        headers=(series["axis_name"], "TOI", "DET", "b-DET", "N-Rand", "Proposed"),
        rows=rows,
    )


def _slice_task(spec: tuple[str, str, float], points: int) -> Table:
    """One panel as a parallel task (pure)."""
    panel, axis, value = spec
    return _slice_table(panel, axis, value, points)


def run(points: int = 120, jobs: int | None = None) -> ExperimentResult:
    """Reproduce the four Figure 2 panels (one parallel task each)."""
    instrumentation = Instrumentation()
    with instrumentation.stage("panel slices", tasks=len(SLICES)):
        tables = ParallelMap(jobs, label="fig2-panels").map(
            partial(_slice_task, points=points), SLICES
        )
    # Headline check of the figure: the proposed curve is the lower
    # envelope everywhere, and panels (c)-(d) contain a strict b-DET win.
    notes = []
    for table, (panel, axis, value) in zip(tables, SLICES):
        data = np.array(
            [[cell if cell != "" else np.nan for cell in row[1:]] for row in table.rows],
            dtype=float,
        )
        envelope_ok = np.allclose(
            data[:, 4], np.nanmin(data[:, :4], axis=1), equal_nan=True
        )
        bdet_strict = np.nansum(
            data[:, 2] < np.nanmin(data[:, [0, 1, 3]], axis=1) - 1e-9
        )
        notes.append(
            f"panel {panel}: proposed == lower envelope: {envelope_ok}; "
            f"points where b-DET strictly wins: {int(bdet_strict)}"
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="Projected views of worst-case CR (slices of Figure 1b)",
        tables=tables,
        notes=notes,
        timings=instrumentation.timings,
    )
