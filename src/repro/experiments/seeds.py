"""Seed-robustness study (reproduction methodology extension).

Our evaluation dataset is synthetic, so its results could in principle
be a fluke of the default seed.  This experiment regenerates the fleets
under several independent seeds and reports the spread of the headline
Figure 4 quantities — proposed win rate and mean CR — showing they are
stable properties of the calibrated model, not of one draw.
"""

from __future__ import annotations

import time

import numpy as np

from ..constants import B_SSV
from ..engine import Instrumentation
from ..evaluation import evaluate_fleet
from ..fleet import load_fleets, total_vehicle_count
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    vehicles_per_area: int | None = 100,
    break_even: float = B_SSV,
    jobs: int | None = None,
) -> ExperimentResult:
    """Evaluate the headline quantities under several dataset seeds."""
    instrumentation = Instrumentation()
    rows = []
    win_rates = []
    mean_crs = []
    stage_start = time.perf_counter()
    for seed in seeds:
        fleets = load_fleets(seed=seed, vehicles_per_area=vehicles_per_area, jobs=jobs)
        total = total_vehicle_count(fleets)
        wins = 0
        crs = []
        for area in sorted(fleets):
            evaluation = evaluate_fleet(fleets[area], break_even, jobs=jobs)
            wins += evaluation.win_counts()["Proposed"]
            crs.append(evaluation.mean_cr("Proposed"))
        win_rate = wins / total
        mean_cr = float(np.mean(crs))
        win_rates.append(win_rate)
        mean_crs.append(mean_cr)
        rows.append((seed, total, wins, round(win_rate, 4), round(mean_cr, 4)))
    summary = (
        "all seeds",
        "-",
        "-",
        f"{np.mean(win_rates):.4f} +/- {np.std(win_rates):.4f}",
        f"{np.mean(mean_crs):.4f} +/- {np.std(mean_crs):.4f}",
    )
    rows.append(summary)
    instrumentation.add(
        "per-seed evaluations", time.perf_counter() - stage_start, len(seeds)
    )
    return ExperimentResult(
        experiment_id="seeds",
        title=f"Seed robustness of the headline results (B = {break_even:g})",
        tables=[
            Table(
                name="per seed",
                headers=("seed", "vehicles", "proposed_wins", "win_rate", "mean_cr"),
                rows=rows,
            )
        ],
        notes=[
            f"win rate spread over {len(seeds)} seeds: "
            f"{min(win_rates):.3f} - {max(win_rates):.3f}",
            f"mean CR spread: {min(mean_crs):.3f} - {max(mean_crs):.3f}",
        ],
        timings=instrumentation.timings,
    )
