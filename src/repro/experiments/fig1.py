"""Figure 1: strategy-selection regions and the worst-case CR surface.

Figure 1(a) partitions the ``(mu_B_minus / B, q_B_plus)`` plane by which
vertex strategy the constrained solver picks; Figure 1(b) is the optimal
worst-case CR over the same plane.  We emit the dense grid as CSV plus a
coarse ASCII region map and the per-strategy area fractions.
"""

from __future__ import annotations

import numpy as np

from ..core.regions import STRATEGY_CODES, compute_region_grid
from ..engine import Instrumentation
from .report import ExperimentResult, Table

__all__ = ["run"]

_GLYPHS = {"TOI": "T", "DET": "D", "b-DET": "b", "N-Rand": "R", "infeasible": "."}


def _ascii_region_map(grid) -> str:
    """A coarse character map of Figure 1(a) (q increases upward)."""
    code_to_glyph = {STRATEGY_CODES[name]: glyph for name, glyph in _GLYPHS.items()}
    lines = []
    for q_index in range(grid.region_codes.shape[0] - 1, -1, -1):
        line = "".join(
            code_to_glyph[int(code)] for code in grid.region_codes[q_index]
        )
        lines.append(line)
    legend = "  ".join(f"{glyph}={name}" for name, glyph in _GLYPHS.items())
    return "\n".join(lines) + "\n" + legend


def run(
    mu_points: int = 61, q_points: int = 61, jobs: int | None = None
) -> ExperimentResult:
    """Reproduce Figure 1.

    Parameters
    ----------
    mu_points, q_points:
        Grid resolution; the default 61x61 renders in well under a
        second and is dense enough to show every region.
    jobs:
        Worker processes for the grid fan-out (one task per ``q`` row);
        the grid is identical for every value.
    """
    instrumentation = Instrumentation()
    with instrumentation.stage("region grid", tasks=q_points):
        grid = compute_region_grid(
            break_even=1.0, mu_points=mu_points, q_points=q_points, jobs=jobs
        )
    with instrumentation.stage("emit tables", tasks=mu_points * q_points):
        grid_rows = []
        for qi, q in enumerate(grid.q_b_plus):
            for mi, mu in enumerate(grid.normalized_mu):
                cr = grid.worst_case_cr[qi, mi]
                grid_rows.append(
                    (
                        round(float(mu), 6),
                        round(float(q), 6),
                        grid.region_name_at(mi, qi),
                        round(float(cr), 6) if np.isfinite(cr) else "",
                    )
                )
        fraction_rows = [
            (name, round(fraction, 4))
            for name, fraction in sorted(grid.region_fractions().items())
        ]
    result = ExperimentResult(
        experiment_id="fig1",
        title="Strategy selection regions (a) and worst-case CR surface (b)",
        tables=[
            Table(
                name="grid",
                headers=("normalized_mu", "q_b_plus", "region", "worst_case_cr"),
                rows=grid_rows,
            ),
            Table(
                name="region fractions",
                headers=("strategy", "fraction_of_feasible_plane"),
                rows=fraction_rows,
            ),
        ],
        notes=[
            "region map (q_B_plus increases upward, mu_B_minus/B rightward):",
            *_ascii_region_map(grid).split("\n"),
        ],
        timings=instrumentation.timings,
    )
    return result
