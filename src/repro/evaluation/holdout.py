"""Out-of-sample fleet evaluation.

Figure 4 evaluates every strategy on the *same* stops its statistics were
estimated from — in-sample, slightly optimistic for the statistics-using
strategies (Proposed, MOM-Rand).  This module adds the honest protocol:

* split each vehicle's week chronologically into a training prefix and a
  test suffix;
* estimate statistics / build strategies on the prefix only;
* report CRs on the suffix.

The gap between in-sample and out-of-sample results measures how much of
the paper's Figure 4 advantage is real generalization versus estimation
optimism (on the synthetic fleets: nearly all of it is real — see
``benchmarks/bench_holdout.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.analysis import empirical_cr
from ..core.kernels import PrefixSumSample
from ..errors import InvalidParameterError
from ..fleet.generator import VehicleRecord
from .batch import StrategyPlan
from .competitive import STRATEGY_NAMES, FleetEvaluation, VehicleEvaluation, build_strategies

__all__ = ["holdout_evaluate_vehicle", "holdout_evaluate_fleet", "HoldoutComparison", "compare_in_vs_out_of_sample"]


def _split_stops(
    stops: np.ndarray, break_even: float, train_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Chronological train/test split with the degenerate fallbacks."""
    split = int(round(stops.size * train_fraction))
    if split == 0 or split == stops.size:
        training = test = stops
    else:
        training, test = stops[:split], stops[split:]
    if float(np.minimum(test, break_even).sum()) <= 0.0:
        test = stops  # degenerate suffix: all zero-length
    return training, test


def holdout_evaluate_vehicle(
    vehicle: VehicleRecord,
    break_even: float,
    train_fraction: float = 0.5,
    use_kernels: bool = True,
) -> VehicleEvaluation:
    """Train strategies on the chronological prefix, evaluate the suffix.

    Vehicles whose split would leave an empty side are evaluated on the
    whole sample for both phases (falling back to the in-sample protocol
    rather than dropping the vehicle).

    The default path builds a :class:`~repro.evaluation.batch.StrategyPlan`
    on the training prefix and evaluates ``crs_on`` the test sample —
    the plan/sample split is exactly this protocol.  ``use_kernels=False``
    takes the original strategy-object path.
    """
    if not 0.0 < train_fraction < 1.0:
        raise InvalidParameterError(
            f"train_fraction must lie in (0, 1), got {train_fraction!r}"
        )
    stops = vehicle.stop_lengths
    training, test = _split_stops(stops, break_even, train_fraction)
    if use_kernels:
        plan = StrategyPlan.from_stop_lengths(training, break_even)
        crs = plan.crs_on(PrefixSumSample(test))
        return VehicleEvaluation(
            vehicle_id=vehicle.vehicle_id,
            area=vehicle.area,
            stats=plan.stats,
            crs=crs,
            selected_vertex=plan.selected_vertex,
        )
    strategies = build_strategies(training, break_even)
    crs = {
        name: empirical_cr(strategy, test, break_even)
        for name, strategy in strategies.items()
    }
    proposed = strategies["Proposed"]
    return VehicleEvaluation(
        vehicle_id=vehicle.vehicle_id,
        area=vehicle.area,
        stats=proposed.stats,
        crs=crs,
        selected_vertex=proposed.selected_name,
    )


def holdout_evaluate_fleet(
    vehicles: Sequence[VehicleRecord] | Iterable[VehicleRecord],
    break_even: float,
    train_fraction: float = 0.5,
    use_kernels: bool = True,
) -> FleetEvaluation:
    """Out-of-sample evaluation over a fleet."""
    evaluations = [
        holdout_evaluate_vehicle(vehicle, break_even, train_fraction, use_kernels)
        for vehicle in vehicles
    ]
    return FleetEvaluation(evaluations=evaluations)


@dataclass(frozen=True)
class HoldoutComparison:
    """In-sample vs out-of-sample summary for one fleet and strategy."""

    strategy: str
    in_sample_mean_cr: float
    out_of_sample_mean_cr: float
    in_sample_wins: int
    out_of_sample_wins: int

    @property
    def optimism(self) -> float:
        """Out-of-sample minus in-sample mean CR (>= 0 means the
        in-sample number was optimistic)."""
        return self.out_of_sample_mean_cr - self.in_sample_mean_cr


def compare_in_vs_out_of_sample(
    vehicles: Sequence[VehicleRecord],
    break_even: float,
    train_fraction: float = 0.5,
) -> list[HoldoutComparison]:
    """Run both protocols and summarize per strategy."""
    from .competitive import evaluate_fleet

    in_sample = evaluate_fleet(vehicles, break_even)
    out_of_sample = holdout_evaluate_fleet(vehicles, break_even, train_fraction)
    in_wins = in_sample.win_counts()
    out_wins = out_of_sample.win_counts()
    return [
        HoldoutComparison(
            strategy=name,
            in_sample_mean_cr=in_sample.mean_cr(name),
            out_of_sample_mean_cr=out_of_sample.mean_cr(name),
            in_sample_wins=in_wins[name],
            out_of_sample_wins=out_wins[name],
        )
        for name in STRATEGY_NAMES
    ]
