"""Competitive-analysis harness: fleet evaluation, traffic sweeps and
Monte-Carlo estimators."""

from .batch import StrategyPlan, fleet_cr_matrix, select_vertex
from .competitive import (
    STRATEGY_NAMES,
    FleetEvaluation,
    VehicleEvaluation,
    build_strategies,
    evaluate_fleet,
    evaluate_vehicle,
)
from .holdout import (
    HoldoutComparison,
    compare_in_vs_out_of_sample,
    holdout_evaluate_fleet,
    holdout_evaluate_vehicle,
)
from .montecarlo import MonteCarloCR, bootstrap_cr_interval, monte_carlo_cr
from .significance import (
    MeanDifference,
    compare_strategies,
    paired_bootstrap_mean_difference,
    win_rate_interval,
)
from .sweep import SweepResult, sweep_analytic, sweep_simulated
from .pareto import ParetoPoint, pareto_frontier, vehicle_pareto_report
from .variance import CostMoments, risk_report, weekly_cost_moments

__all__ = [
    "STRATEGY_NAMES",
    "StrategyPlan",
    "select_vertex",
    "fleet_cr_matrix",
    "build_strategies",
    "VehicleEvaluation",
    "FleetEvaluation",
    "evaluate_vehicle",
    "evaluate_fleet",
    "SweepResult",
    "sweep_simulated",
    "sweep_analytic",
    "MonteCarloCR",
    "monte_carlo_cr",
    "bootstrap_cr_interval",
    "MeanDifference",
    "paired_bootstrap_mean_difference",
    "win_rate_interval",
    "compare_strategies",
    "HoldoutComparison",
    "holdout_evaluate_vehicle",
    "holdout_evaluate_fleet",
    "compare_in_vs_out_of_sample",
    "CostMoments",
    "weekly_cost_moments",
    "risk_report",
    "ParetoPoint",
    "pareto_frontier",
    "vehicle_pareto_report",
]
