"""Statistical significance for fleet comparisons.

Figure 4's claims ("our algorithm achieves the best average CR in 1169
of 1182 vehicles", "the mean CR ... lowest among all strategies") are
point estimates over a finite fleet.  This module quantifies their
uncertainty:

* :func:`paired_bootstrap_mean_difference` — bootstrap CI of the
  *paired* per-vehicle CR difference between two strategies (pairing
  removes between-vehicle variance, exactly as the paper's per-vehicle
  comparison does);
* :func:`win_rate_interval` — Wilson score interval for the fraction of
  vehicles a strategy wins;
* :func:`compare_strategies` — the full pairwise report for a
  :class:`~repro.evaluation.competitive.FleetEvaluation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .competitive import STRATEGY_NAMES, FleetEvaluation

__all__ = [
    "MeanDifference",
    "paired_bootstrap_mean_difference",
    "win_rate_interval",
    "compare_strategies",
]


@dataclass(frozen=True)
class MeanDifference:
    """Paired mean CR difference (other - reference) with a bootstrap CI."""

    reference: str
    other: str
    mean_difference: float
    ci_low: float
    ci_high: float
    significant: bool


def paired_bootstrap_mean_difference(
    reference_crs: np.ndarray,
    other_crs: np.ndarray,
    rng: np.random.Generator,
    n_bootstrap: int = 2000,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Mean of (other - reference) with a percentile bootstrap CI.

    Positive values mean the reference strategy is better (lower CR).
    """
    a = np.asarray(reference_crs, dtype=float)
    b = np.asarray(other_crs, dtype=float)
    if a.shape != b.shape or a.size == 0:
        raise InvalidParameterError("CR arrays must be matching and non-empty")
    if n_bootstrap < 100:
        raise InvalidParameterError(f"n_bootstrap must be >= 100, got {n_bootstrap}")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(f"confidence must lie in (0, 1), got {confidence!r}")
    differences = b - a
    point = float(differences.mean())
    indices = rng.integers(0, a.size, size=(n_bootstrap, a.size))
    resampled = differences[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    return point, float(np.quantile(resampled, tail)), float(
        np.quantile(resampled, 1.0 - tail)
    )


def win_rate_interval(
    wins: int, total: int, confidence: float = 0.95
) -> tuple[float, float, float]:
    """Wilson score interval for a win fraction."""
    if total <= 0 or wins < 0 or wins > total:
        raise InvalidParameterError(f"invalid win counts: {wins}/{total}")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(f"confidence must lie in (0, 1), got {confidence!r}")
    # Normal quantile via the inverse error function.
    from scipy import stats as sps

    z = float(sps.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = wins / total
    denominator = 1.0 + z * z / total
    center = (p + z * z / (2 * total)) / denominator
    half_width = (
        z * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total)) / denominator
    )
    return p, max(0.0, center - half_width), min(1.0, center + half_width)


def compare_strategies(
    evaluation: FleetEvaluation,
    reference: str = "Proposed",
    rng: np.random.Generator | None = None,
    n_bootstrap: int = 2000,
    confidence: float = 0.95,
) -> list[MeanDifference]:
    """Pairwise paired-bootstrap comparison of every strategy against the
    reference.  A difference is ``significant`` when its CI excludes 0.
    """
    if reference not in STRATEGY_NAMES:
        raise InvalidParameterError(f"unknown reference strategy {reference!r}")
    if rng is None:
        rng = np.random.default_rng(0)
    reference_crs = evaluation.crs_of(reference)
    results = []
    for name in STRATEGY_NAMES:
        if name == reference:
            continue
        point, low, high = paired_bootstrap_mean_difference(
            reference_crs,
            evaluation.crs_of(name),
            rng,
            n_bootstrap=n_bootstrap,
            confidence=confidence,
        )
        results.append(
            MeanDifference(
                reference=reference,
                other=name,
                mean_difference=point,
                ci_low=low,
                ci_high=high,
                significant=bool(low > 0.0 or high < 0.0),
            )
        )
    return results
