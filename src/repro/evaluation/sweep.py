"""Traffic-condition sweeps (Figures 5 and 6).

The paper validates robustness by "following the distribution of Chicago,
but scaling its mean value", then plotting each strategy's **worst-case
CR** against the mean stop length.  Two evaluation modes are provided:

* ``simulated`` — per mean value, synthesize a small fleet from the
  scaled distribution and take the largest per-vehicle CR (exactly the
  Figure 4 worst-case statistic, now as a function of traffic);
* ``analytic`` — per mean value, compute each strategy's worst-case
  expected CR over the ambiguity set ``Q(mu_B_minus, q_B_plus)`` implied
  by the scaled distribution (the guarantee curves; the moment-LP of
  :func:`repro.core.analysis.worst_case_expected_cost` handles arbitrary
  strategies).

Expected shape (the paper's Figures 5-6): DET is good in light traffic
(short means) and degrades toward 2; TOI is poor in light traffic and
approaches 1 in heavy traffic; N-Rand is flat at e/(e-1); MOM-Rand
interpolates; the proposed curve lower-bounds them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..core.analysis import worst_case_cr
from ..core.constrained import ProposedOnline
from ..core.kernels import PrefixSumSample
from ..core.stats import StopStatistics
from ..distributions.base import StopLengthDistribution
from ..distributions.scaled import scale_to_mean
from ..engine import MapCheckpoint, ParallelMap, ResultCache, spawn_seeds
from ..errors import InvalidParameterError
from .batch import StrategyPlan
from .competitive import STRATEGY_NAMES, build_strategies

__all__ = ["SweepResult", "sweep_simulated", "sweep_analytic"]


@dataclass(frozen=True)
class SweepResult:
    """CR-vs-mean-stop-length series, one per strategy."""

    mean_stop_lengths: np.ndarray
    series: dict[str, np.ndarray]
    break_even: float
    mode: str

    def crossover_mean(self, name_a: str, name_b: str) -> float | None:
        """First mean at which ``name_b``'s CR drops below ``name_a``'s
        (e.g. the DET/TOI crossover); None if they never cross."""
        a, b = self.series[name_a], self.series[name_b]
        below = np.flatnonzero(b < a)
        if below.size == 0:
            return None
        return float(self.mean_stop_lengths[below[0]])


def _validate_means(mean_stop_lengths) -> np.ndarray:
    means = np.asarray(mean_stop_lengths, dtype=float)
    if means.size == 0 or np.any(~np.isfinite(means)) or np.any(means <= 0.0):
        raise InvalidParameterError("mean stop lengths must be positive and finite")
    return means


def _simulated_point(
    task: tuple[float, np.random.SeedSequence],
    base_distribution: StopLengthDistribution,
    break_even: float,
    vehicles_per_point: int,
    stops_per_vehicle: int,
) -> dict[str, float]:
    """One swept mean: worst CR per strategy over a small synthetic
    fleet.  Each vehicle draws from its own seed child, so the point is
    a pure function of its task and identical under any worker count."""
    mean, point_seed = task
    scaled = scale_to_mean(base_distribution, float(mean))
    worst = {name: 0.0 for name in STRATEGY_NAMES}
    for child in point_seed.spawn(vehicles_per_point):
        rng = np.random.default_rng(child)
        stops = np.maximum(scaled.sample(stops_per_vehicle, rng), 1e-6)
        sample = PrefixSumSample(stops)
        crs = StrategyPlan.from_sample(sample, break_even).crs_on(sample)
        for name, cr in crs.items():
            if cr > worst[name]:
                worst[name] = cr
    return worst


def sweep_simulated(
    base_distribution: StopLengthDistribution,
    mean_stop_lengths,
    break_even: float,
    vehicles_per_point: int = 40,
    stops_per_vehicle: int = 80,
    seed: int = 0,
    jobs: int | None = None,
    checkpoint_cache: ResultCache | None = None,
) -> SweepResult:
    """Figure 5/6, simulated mode.

    Per swept mean: scale the base distribution to that mean, draw
    ``vehicles_per_point`` vehicles of ``stops_per_vehicle`` stops each,
    evaluate all six strategies per vehicle, and record the worst
    (largest) CR per strategy.  Points fan out over ``jobs`` workers;
    per-point seed children keep the result independent of the count.

    ``checkpoint_cache`` spills each completed point through the result
    cache so an interrupted sweep resumes from its completed prefix
    (the per-point worker params ride in the checkpoint scope; the mean
    and its seed child are part of the task digest itself).
    """
    means = _validate_means(mean_stop_lengths)
    if vehicles_per_point <= 0 or stops_per_vehicle <= 0:
        raise InvalidParameterError("vehicle and stop counts must be >= 1")
    tasks = list(zip(means.tolist(), spawn_seeds(seed, means.size)))
    worker = partial(
        _simulated_point,
        base_distribution=base_distribution,
        break_even=break_even,
        vehicles_per_point=vehicles_per_point,
        stops_per_vehicle=stops_per_vehicle,
    )
    checkpoint = None
    if checkpoint_cache is not None:
        checkpoint = MapCheckpoint(
            cache=checkpoint_cache,
            scope=(
                f"sweep-simulated:B={break_even:g}:v={vehicles_per_point}"
                f":s={stops_per_vehicle}:d={base_distribution!r}"
            ),
        )
    per_point = ParallelMap(jobs, label="sweep-simulated").map(
        worker, tasks, checkpoint=checkpoint
    )
    series = {name: np.empty(means.size) for name in STRATEGY_NAMES}
    for index, worst in enumerate(per_point):
        for name in STRATEGY_NAMES:
            series[name][index] = worst[name]
    return SweepResult(
        mean_stop_lengths=means, series=series, break_even=break_even, mode="simulated"
    )


def _analytic_point(
    mean: float,
    base_distribution: StopLengthDistribution,
    break_even: float,
    grid_size: int,
) -> dict[str, float]:
    """One swept mean of the analytic sweep (pure, no randomness)."""
    scaled = scale_to_mean(base_distribution, float(mean))
    stats = StopStatistics.from_distribution(scaled, break_even)
    proposed = ProposedOnline(stats)
    strategies = {
        # Use a representative sample only to size MOM-Rand's mu; the
        # deterministic/randomized baselines need no data.
        name: strategy
        for name, strategy in build_strategies(
            np.array([float(mean)]), break_even
        ).items()
        if name != "Proposed"
    }
    point = {name: np.nan for name in STRATEGY_NAMES}
    point["Proposed"] = proposed.worst_case_cr
    for name, strategy in strategies.items():
        if name == "NEV":
            continue  # unbounded over Q; keep NaN
        point[name] = worst_case_cr(strategy, stats, grid_size)
    return point


def sweep_analytic(
    base_distribution: StopLengthDistribution,
    mean_stop_lengths,
    break_even: float,
    grid_size: int = 512,
    jobs: int | None = None,
    checkpoint_cache: ResultCache | None = None,
) -> SweepResult:
    """Figure 5/6, analytic mode: guaranteed worst-case CR over Q.

    Per swept mean: compute the scaled distribution's
    ``(mu_B_minus, q_B_plus)``, then each strategy's worst-case expected
    CR over the ambiguity set via the moment LP.  NEV is reported as NaN
    (its worst case over Q is unbounded whenever long stops exist).
    ``checkpoint_cache`` makes the sweep resumable (see
    :func:`sweep_simulated`); the non-task worker params — grid size,
    break-even, distribution — are folded into the checkpoint scope.
    """
    means = _validate_means(mean_stop_lengths)
    worker = partial(
        _analytic_point,
        base_distribution=base_distribution,
        break_even=break_even,
        grid_size=grid_size,
    )
    checkpoint = None
    if checkpoint_cache is not None:
        checkpoint = MapCheckpoint(
            cache=checkpoint_cache,
            scope=(
                f"sweep-analytic:B={break_even:g}:g={grid_size}"
                f":d={base_distribution!r}"
            ),
        )
    per_point = ParallelMap(jobs, label="sweep-analytic").map(
        worker, means.tolist(), checkpoint=checkpoint
    )
    series = {name: np.full(means.size, np.nan) for name in STRATEGY_NAMES}
    for index, point in enumerate(per_point):
        for name in STRATEGY_NAMES:
            series[name][index] = point[name]
    return SweepResult(
        mean_stop_lengths=means, series=series, break_even=break_even, mode="analytic"
    )
