"""Cost-variance analysis: the risk side of randomized strategies.

Competitive analysis compares *expected* costs; a driver experiences one
realization.  Randomized strategies (N-Rand, MOM-Rand, b-Rand) trade a
better worst-case expectation for week-to-week variance — every stop is
a fresh lottery over thresholds — while the deterministic vertices (TOI,
DET, b-DET) cost exactly their expectation.  This module quantifies the
trade:

* :func:`weekly_cost_moments` — mean and standard deviation of the total
  cost of a stop sequence under independent per-stop randomization;
* :func:`risk_report` — the mean/std table across the standard strategy
  set for one vehicle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.strategy import Strategy
from ..errors import InvalidParameterError
from .competitive import build_strategies

__all__ = ["CostMoments", "weekly_cost_moments", "risk_report"]


@dataclass(frozen=True)
class CostMoments:
    """Mean and standard deviation of a stop sequence's total cost."""

    mean: float
    std: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.mean <= 0.0:
            return 0.0
        return self.std / self.mean


def weekly_cost_moments(strategy: Strategy, stop_lengths: np.ndarray) -> CostMoments:
    """Exact mean/std of the total cost over a stop sequence.

    Thresholds are drawn independently per stop, so the total's variance
    is the sum of per-stop variances.
    """
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot analyse zero stops")
    mean = float(strategy.expected_cost_vec(y).sum())
    variance = float(sum(strategy.cost_variance(float(v)) for v in y))
    return CostMoments(mean=mean, std=math.sqrt(variance))


def risk_report(stop_lengths: np.ndarray, break_even: float) -> dict[str, CostMoments]:
    """Mean/std of the weekly cost for each standard strategy on one
    vehicle's stops (NEV included — zero variance, unbounded mean risk of
    a different kind)."""
    strategies = build_strategies(np.asarray(stop_lengths, dtype=float), break_even)
    return {
        name: weekly_cost_moments(strategy, stop_lengths)
        for name, strategy in strategies.items()
    }
