"""Mean-variance Pareto analysis of strategy choices.

For one vehicle, each strategy is a point in (expected weekly cost,
weekly cost standard deviation) space.  The CR metric ranks only the
first axis; a risk-averse owner cares about both.  This module computes
the Pareto-efficient subset — typically the deterministic vertices plus,
when randomization genuinely lowers the mean, a randomized point whose
extra variance is the price of that mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .variance import CostMoments, risk_report

__all__ = ["ParetoPoint", "pareto_frontier", "vehicle_pareto_report"]


@dataclass(frozen=True)
class ParetoPoint:
    """One strategy's position in mean/std space."""

    strategy: str
    mean: float
    std: float
    efficient: bool


def pareto_frontier(moments: dict[str, CostMoments]) -> list[ParetoPoint]:
    """Mark the Pareto-efficient strategies (no other strategy has both
    a lower-or-equal mean and a lower-or-equal std, with one strict).

    Returns all points, sorted by mean, with the ``efficient`` flag set.
    """
    if not moments:
        raise InvalidParameterError("need at least one strategy's moments")
    points = []
    for name, m in moments.items():
        dominated = any(
            (other.mean <= m.mean and other.std <= m.std)
            and (other.mean < m.mean or other.std < m.std)
            for other_name, other in moments.items()
            if other_name != name
        )
        points.append(
            ParetoPoint(strategy=name, mean=m.mean, std=m.std, efficient=not dominated)
        )
    return sorted(points, key=lambda p: (p.mean, p.std))


def vehicle_pareto_report(stop_lengths: np.ndarray, break_even: float) -> list[ParetoPoint]:
    """The full mean/std frontier for one vehicle's stops across the
    standard strategy set."""
    return pareto_frontier(risk_report(stop_lengths, break_even))
