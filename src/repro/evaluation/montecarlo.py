"""Monte-Carlo estimators for competitive ratios.

The analysis layer computes CRs exactly (per-stop expected costs).  These
estimators provide the *realized* counterparts — actual threshold draws,
actual restarts — plus bootstrap uncertainty over the stop sample.  They
back the integration tests (exact vs realized agreement) and the example
scripts that show sampling noise to users.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..core.analysis import empirical_offline_cost
from ..core.kernels import (
    bootstrap_cr_samples,
    bootstrap_resample_indices,
    quantile_pair,
)
from ..core.strategy import Strategy
from ..engine import ParallelMap, spawn_rngs
from ..errors import DegenerateStatisticsError, InvalidParameterError
from ..simulation.engine_sim import simulate_stops

__all__ = ["MonteCarloCR", "monte_carlo_cr", "bootstrap_cr_interval"]


@dataclass(frozen=True)
class MonteCarloCR:
    """Realized-CR estimate over repeated strategy randomizations."""

    mean: float
    std: float
    repetitions: int
    samples: np.ndarray


def _realized_ratio(
    rep_rng: np.random.Generator,
    strategy: Strategy,
    stop_lengths: np.ndarray,
    offline: float,
) -> float:
    """One Monte-Carlo repetition with its own independent generator."""
    online = simulate_stops(stop_lengths, strategy=strategy, rng=rep_rng)
    return float(online.total_cost_seconds / offline)


def monte_carlo_cr(
    strategy: Strategy,
    stop_lengths: np.ndarray,
    repetitions: int,
    rng: np.random.Generator,
    jobs: int | None = None,
) -> MonteCarloCR:
    """Realized CR over ``repetitions`` independent randomizations of the
    strategy on a fixed stop sample.

    For deterministic strategies every repetition is identical and the
    std is zero; for randomized strategies the spread shows how much an
    actual vehicle's weekly cost varies around the expected CR.

    Each repetition runs on its own generator spawned from ``rng`` in
    the parent, so the estimate is bit-identical for every ``jobs``
    value (and repetitions may run in worker processes).
    """
    if repetitions <= 0:
        raise InvalidParameterError(f"repetitions must be >= 1, got {repetitions}")
    y = np.asarray(stop_lengths, dtype=float)
    offline = empirical_offline_cost(y, strategy.break_even) * y.size
    if offline <= 0.0:
        raise DegenerateStatisticsError("offline cost is zero over the sample; CR undefined")
    worker = partial(_realized_ratio, strategy=strategy, stop_lengths=y, offline=offline)
    ratios = np.asarray(
        ParallelMap(jobs, label="monte-carlo").map(worker, spawn_rngs(rng, repetitions))
    )
    return MonteCarloCR(
        mean=float(ratios.mean()),
        std=float(ratios.std(ddof=1)) if repetitions > 1 else 0.0,
        repetitions=repetitions,
        samples=ratios,
    )


def bootstrap_cr_interval(
    strategy: Strategy,
    stop_lengths: np.ndarray,
    rng: np.random.Generator,
    n_bootstrap: int = 200,
    confidence: float = 0.95,
    use_kernels: bool = True,
) -> tuple[float, float]:
    """Bootstrap confidence interval of the *expected* CR over the stop
    sample (resampling stops with replacement).

    Captures how sensitive a vehicle's CR is to which week was recorded.

    The default path is fully vectorised: one ``rng.integers`` call
    builds the whole ``(n_bootstrap, n)`` index matrix and per-stop
    costs are memoized on the sample's unique values
    (:func:`~repro.core.kernels.bootstrap_cr_samples`).  **RNG stream
    note:** this consumes the generator differently from the historical
    per-replicate ``rng.choice`` loop, so seeded intervals differ from
    pre-kernel releases (statistically equivalent).  ``use_kernels=False``
    keeps the old ``rng.choice`` stream.
    """
    if n_bootstrap <= 1:
        raise InvalidParameterError(f"n_bootstrap must be >= 2, got {n_bootstrap}")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(f"confidence must lie in (0, 1), got {confidence!r}")
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot bootstrap zero stops")
    b = strategy.break_even
    if use_kernels:
        indices = bootstrap_resample_indices(rng, n_bootstrap, y.size)
        ratios = bootstrap_cr_samples(strategy, y, indices, b)
    else:
        ratios = []
        for _ in range(n_bootstrap):
            resampled = rng.choice(y, size=y.size, replace=True)
            offline = float(np.minimum(resampled, b).sum())
            if offline <= 0.0:
                continue
            online = float(strategy.expected_cost_vec(resampled).sum())
            ratios.append(online / offline)
        if not ratios:
            raise InvalidParameterError("all bootstrap resamples had zero offline cost")
    tail = (1.0 - confidence) / 2.0
    return quantile_pair(np.asarray(ratios), tail, 1.0 - tail)
