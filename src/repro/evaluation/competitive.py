"""Fleet-level competitive analysis (the Figure 4 machinery).

For each vehicle the harness builds the paper's six strategies —

* TOI, NEV, DET (deterministic baselines),
* N-Rand (Karlin 1990), MOM-Rand (Khanafer 2013, using the vehicle's
  sample mean),
* the Proposed constrained algorithm (using the vehicle's sample
  ``(mu_B_minus, q_B_plus)``) —

evaluates each strategy's expected CR on the vehicle's own stops
(Eq. 5 with the empirical distribution), and aggregates: worst case
(largest CR over vehicles), mean CR, and per-strategy win counts
("our proposed algorithm achieves the best average CR in 1169 of them").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, partial
from typing import Iterable, Sequence

import numpy as np

from ..core.analysis import empirical_cr
from ..engine import ParallelMap
from ..core.constrained import ProposedOnline
from ..core.deterministic import Deterministic, NeverOff, TurnOffImmediately
from ..core.kernels import PrefixSumSample
from ..core.randomized import MOMRand, NRand
from ..core.stats import StopStatistics
from ..core.strategy import Strategy
from ..errors import InvalidParameterError
from ..fleet.generator import VehicleRecord
from .batch import StrategyPlan

__all__ = [
    "STRATEGY_NAMES",
    "build_strategies",
    "VehicleEvaluation",
    "FleetEvaluation",
    "evaluate_vehicle",
    "evaluate_fleet",
]

#: The six strategies of the Figure 4 comparison, in display order.
STRATEGY_NAMES = ("Proposed", "TOI", "NEV", "DET", "N-Rand", "MOM-Rand")


def build_strategies(stop_lengths: np.ndarray, break_even: float) -> dict[str, Strategy]:
    """Instantiate the six Figure 4 strategies for one vehicle.

    The information each strategy receives matches the paper: NEV/TOI/DET
    need only ``B``; N-Rand needs ``B``; MOM-Rand additionally gets the
    sample mean; Proposed gets the sample ``(mu_B_minus, q_B_plus)``.
    """
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot build strategies for zero stops")
    return {
        "Proposed": ProposedOnline.from_samples(y, break_even),
        "TOI": TurnOffImmediately(break_even),
        "NEV": NeverOff(break_even),
        "DET": Deterministic(break_even),
        "N-Rand": NRand(break_even),
        "MOM-Rand": MOMRand(break_even, float(y.mean())),
    }


@dataclass(frozen=True)
class VehicleEvaluation:
    """One vehicle's CR under each strategy."""

    vehicle_id: str
    area: str | None
    stats: StopStatistics
    crs: dict[str, float]
    selected_vertex: str

    @property
    def best_strategy(self) -> str:
        """Strategy with the smallest CR (ties go to the display order,
        so a tie with Proposed counts as a Proposed win — consistent
        with how the paper counts 'best in N vehicles')."""
        return min(STRATEGY_NAMES, key=lambda name: (self.crs[name], STRATEGY_NAMES.index(name)))


def evaluate_vehicle(
    vehicle: VehicleRecord, break_even: float, use_kernels: bool = True
) -> VehicleEvaluation:
    """Evaluate the six strategies on one vehicle's stop sample.

    The default path goes through the prefix-sum kernels
    (:class:`~repro.evaluation.batch.StrategyPlan`): one sort per
    vehicle, no strategy objects.  ``use_kernels=False`` takes the
    original scalar path (six strategy objects, one
    :func:`~repro.core.analysis.empirical_cr` scan each) — kept as the
    reference implementation for tests and benchmarks; the two agree
    within 1e-9 (``tests/test_kernels.py``).
    """
    if not use_kernels:
        return _evaluate_vehicle_scalar(vehicle, break_even)
    sample = PrefixSumSample(vehicle.stop_lengths)
    plan = StrategyPlan.from_sample(sample, break_even)
    return VehicleEvaluation(
        vehicle_id=vehicle.vehicle_id,
        area=vehicle.area,
        stats=plan.stats,
        crs=plan.crs_on(sample),
        selected_vertex=plan.selected_vertex,
    )


def _evaluate_vehicle_scalar(
    vehicle: VehicleRecord, break_even: float
) -> VehicleEvaluation:
    """The pre-kernel scalar reference path (see :func:`evaluate_vehicle`)."""
    y = vehicle.stop_lengths
    strategies = build_strategies(y, break_even)
    crs = {
        name: empirical_cr(strategy, y, break_even)
        for name, strategy in strategies.items()
    }
    proposed = strategies["Proposed"]
    return VehicleEvaluation(
        vehicle_id=vehicle.vehicle_id,
        area=vehicle.area,
        stats=proposed.stats,
        crs=crs,
        selected_vertex=proposed.selected_name,
    )


@dataclass
class FleetEvaluation:
    """Aggregated CRs over a fleet of vehicles.

    The per-strategy CR matrix is built once (``cached_property``) and
    shared by every aggregate; ``evaluations`` is treated as immutable
    after construction.
    """

    evaluations: list[VehicleEvaluation]

    def __post_init__(self) -> None:
        if not self.evaluations:
            raise InvalidParameterError("fleet evaluation needs at least one vehicle")

    @property
    def vehicle_count(self) -> int:
        return len(self.evaluations)

    @cached_property
    def cr_matrix(self) -> np.ndarray:
        """Read-only CR matrix ``(vehicles, strategies)`` in
        ``STRATEGY_NAMES`` column order."""
        matrix = np.empty((len(self.evaluations), len(STRATEGY_NAMES)))
        for i, evaluation in enumerate(self.evaluations):
            crs = evaluation.crs
            for j, name in enumerate(STRATEGY_NAMES):
                matrix[i, j] = crs[name]
        matrix.setflags(write=False)
        return matrix

    def crs_of(self, strategy_name: str) -> np.ndarray:
        if strategy_name not in STRATEGY_NAMES:
            raise InvalidParameterError(
                f"unknown strategy {strategy_name!r}; expected one of {STRATEGY_NAMES}"
            )
        return self.cr_matrix[:, STRATEGY_NAMES.index(strategy_name)]

    def worst_cr(self, strategy_name: str) -> float:
        """The largest CR over vehicles — Figure 4's 'worst case CR'."""
        return float(self.crs_of(strategy_name).max())

    def mean_cr(self, strategy_name: str) -> float:
        """The mean CR over vehicles — Figure 4's 'average CR'."""
        return float(self.crs_of(strategy_name).mean())

    def win_counts(self) -> dict[str, int]:
        """How many vehicles each strategy is best on.

        ``argmin`` returns the first minimizing column, which in display
        order is exactly the tie rule of
        :attr:`VehicleEvaluation.best_strategy`.
        """
        best = np.argmin(self.cr_matrix, axis=1)
        counts = np.bincount(best, minlength=len(STRATEGY_NAMES))
        return {name: int(counts[j]) for j, name in enumerate(STRATEGY_NAMES)}

    def vertex_selection_counts(self) -> dict[str, int]:
        """Which vertex the proposed selector picked, per vehicle."""
        counts: dict[str, int] = {}
        for evaluation in self.evaluations:
            counts[evaluation.selected_vertex] = (
                counts.get(evaluation.selected_vertex, 0) + 1
            )
        return counts

    def summary_rows(self) -> list[dict]:
        """One row per strategy: worst and mean CR (Figure 4's bars)."""
        return [
            {
                "strategy": name,
                "worst_cr": self.worst_cr(name),
                "mean_cr": self.mean_cr(name),
            }
            for name in STRATEGY_NAMES
        ]


def evaluate_fleet(
    vehicles: Sequence[VehicleRecord] | Iterable[VehicleRecord],
    break_even: float,
    jobs: int | None = None,
    use_kernels: bool = True,
) -> FleetEvaluation:
    """Evaluate every vehicle in a fleet (one area, one ``B``).

    Per-vehicle evaluation is pure, so ``jobs`` fans it out over worker
    processes with no effect on the result or its ordering.
    """
    evaluations = ParallelMap(jobs, label="fleet-eval").map(
        partial(evaluate_vehicle, break_even=break_even, use_kernels=use_kernels),
        vehicles,
    )
    return FleetEvaluation(evaluations=evaluations)
