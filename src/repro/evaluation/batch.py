"""Batched fleet-CR evaluation on prefix-sum kernels.

The scalar Figure 4 path instantiates six strategy objects per vehicle
and runs one :func:`~repro.core.analysis.empirical_cr` scan per
strategy.  This module collapses that to a :class:`StrategyPlan` — the
handful of scalars that determine every strategy's CR on a sample — and
evaluates all six from one :class:`~repro.core.kernels.PrefixSumSample`:
a single sort, one (lazy) pair of prefix sums, and a few binary
searches per vehicle.

The plan/sample split also gives the out-of-sample protocol for free:
build the plan on a training prefix, evaluate ``crs_on`` a test-suffix
sample (see :mod:`repro.evaluation.holdout`).

Exact-tie discipline
--------------------
``crs_on`` computes the Proposed strategy's CR by re-using the *same*
closed form (and the same floats) as the vertex it delegates to, so the
exact CR ties the scalar path produces (Proposed == its vertex, MOM-Rand
== N-Rand in the fallback regime) are preserved bit-for-bit — win counts
are unchanged.  The lean vertex selector mirrors
:class:`~repro.core.constrained.ConstrainedSkiRentalSolver` (same costs,
same tie order, same degenerate corners); ``tests/test_kernels.py``
cross-checks them property-style.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import E
from ..core.constrained import (
    DEGENERATE_B_FRACTION,
    worst_case_cost_bdet,
    worst_case_cost_det,
    worst_case_cost_nrand,
    worst_case_cost_toi,
)
from ..core.deterministic import optimal_b
from ..core.kernels import PrefixSumSample
from ..core.randomized import mom_rand_uses_revised_pdf
from ..core.stats import StopStatistics
from ..errors import DegenerateStatisticsError, InvalidParameterError

__all__ = ["StrategyPlan", "select_vertex", "fleet_cr_matrix"]

#: Vertex tie-break order of the constrained solver (simpler first).
_VERTEX_TIE_ORDER = {"TOI": 0, "DET": 1, "b-DET": 2, "N-Rand": 3}


def select_vertex(stats: StopStatistics) -> tuple[str, float | None]:
    """The constrained solver's vertex choice, without object overhead.

    Returns ``(vertex_name, b_star)`` where ``b_star`` is the b-DET
    threshold when that vertex wins (``None`` otherwise).  Mirrors
    :meth:`~repro.core.constrained.ConstrainedSkiRentalSolver.select`:
    same four costs, same TOI < DET < b-DET < N-Rand tie order, same
    degenerate ``mu_B_minus == 0`` corner.
    """
    if stats.expected_offline_cost <= 0.0:
        raise DegenerateStatisticsError(
            "degenerate statistics: expected offline cost is zero "
            "(every stop has zero length); competitive ratios are undefined"
        )
    costs = (
        ("TOI", worst_case_cost_toi(stats)),
        ("DET", worst_case_cost_det(stats)),
        ("b-DET", worst_case_cost_bdet(stats)),
        ("N-Rand", worst_case_cost_nrand(stats)),
    )
    name, _ = min(costs, key=lambda item: (item[1], _VERTEX_TIE_ORDER[item[0]]))
    if name != "b-DET":
        return name, None
    if stats.mu_b_minus == 0.0:
        return name, DEGENERATE_B_FRACTION * stats.break_even
    candidate = optimal_b(stats)
    if candidate <= 0.0:  # subnormal underflow corner
        return name, DEGENERATE_B_FRACTION * stats.break_even
    return name, candidate


@dataclass(frozen=True)
class StrategyPlan:
    """Everything the six Figure 4 strategies need, as plain scalars.

    Built once per vehicle from a (training) sample; ``crs_on`` then
    evaluates any number of (test) samples without touching strategy
    objects.
    """

    break_even: float
    stats: StopStatistics
    selected_vertex: str
    b_star: float | None
    mom_mean: float
    mom_revised: bool

    @classmethod
    def from_sample(cls, sample: PrefixSumSample, break_even: float) -> "StrategyPlan":
        """Estimate the plan from a prefix-sum sample (statistics come
        straight off the prefix sums — one binary search, no scans)."""
        n = sample.values.size
        idx = sample.values.searchsorted(break_even, side="left")
        stats = StopStatistics(
            mu_b_minus=float(sample._prefix[idx] / n),
            q_b_plus=float((n - idx) / n),
            break_even=break_even,
        )
        vertex, b_star = select_vertex(stats)
        mom_mean = sample.mean()
        return cls(
            break_even=stats.break_even,
            stats=stats,
            selected_vertex=vertex,
            b_star=b_star,
            mom_mean=mom_mean,
            mom_revised=mom_rand_uses_revised_pdf(mom_mean, stats.break_even),
        )

    @classmethod
    def from_stop_lengths(cls, stop_lengths, break_even: float) -> "StrategyPlan":
        return cls.from_sample(PrefixSumSample(stop_lengths), break_even)

    def crs_on(self, sample: PrefixSumSample) -> dict[str, float]:
        """CR of all six strategies on a sample, from its prefix sums.

        Keys match :data:`~repro.evaluation.competitive.STRATEGY_NAMES`.
        One binary search at ``B`` serves every strategy (the b-DET
        threshold, when selected, needs a second); the formulas are the
        :class:`~repro.core.kernels.PrefixSumSample` method bodies
        inlined so shared terms are computed once.
        """
        b = self.break_even
        values = sample.values
        n = values.size
        prefix = sample._prefix
        idx = values.searchsorted(b, side="left")
        short = prefix[idx] / n            # partial_expectation(B)
        long_frac = (n - idx) / n          # survival(B)
        offline = float(short + b * long_frac)
        if offline <= 0.0:
            raise DegenerateStatisticsError(
                "offline cost is zero over the sample; CR undefined"
            )
        costs = {
            # deterministic_cost(0, B): no value sorts below 0.
            "TOI": float((0.0 + b) * n / n),
            "NEV": float(prefix[-1] / n),
            "DET": float(short + (b + b) * long_frac),
            "N-Rand": E / (E - 1.0) * offline,
        }
        if self.mom_revised:
            sq_short = sample.square_prefix()[idx] / n
            costs["MOM-Rand"] = float(
                offline + (sq_short + b * b * long_frac) / (2.0 * b * (E - 2.0))
            )
        else:
            costs["MOM-Rand"] = costs["N-Rand"]
        if self.selected_vertex == "b-DET":
            costs["Proposed"] = sample.deterministic_cost(self.b_star, b)
        else:
            # Same float as the winning baseline: exact ties (and hence
            # win counts) match the scalar path.
            costs["Proposed"] = costs[self.selected_vertex]
        return {name: cost / offline for name, cost in costs.items()}


def fleet_cr_matrix(
    stop_samples, break_even: float, strategy_names
) -> np.ndarray:
    """CR matrix ``(vehicles, strategies)`` for a fleet of stop arrays.

    Convenience entry point for benchmarks and bulk analyses; the
    orchestrated path lives in
    :func:`repro.evaluation.competitive.evaluate_fleet`.
    """
    rows = np.empty((len(stop_samples), len(strategy_names)))
    for i, stops in enumerate(stop_samples):
        sample = PrefixSumSample(stops)
        crs = StrategyPlan.from_sample(sample, break_even).crs_on(sample)
        for j, name in enumerate(strategy_names):
            rows[i, j] = crs[name]
    return rows
