"""Validation policies and the deterministic repair/quarantine engine.

Three policies govern what happens when a record fails a check:

* ``strict`` — raise :class:`~repro.errors.DataValidationError` with
  file/line provenance at the first error.  The default everywhere, so
  behaviour is unchanged for clean data and loudly typed for dirty data.
* ``repair`` — drop the offending record (or substitute a documented
  deterministic default for structural fields) and log an
  :class:`~repro.validation.report.Issue`.  The rules are pure functions
  of the input file, so two runs over the same bytes repair identically
  and results stay reproducible.
* ``quarantine`` — like ``repair``, but the dropped record is also
  diverted verbatim to a sidecar file next to its source
  (``<file>.quarantine.csv`` / ``<file>.quarantine.json``) so nothing is
  silently lost; the sidecar is truncated at the start of each pass.

Warnings (severity ``"warning"``) are reported under every policy and
never raise or drop.
"""

from __future__ import annotations

import csv
import json
from enum import Enum
from pathlib import Path

import numpy as np

from ..errors import DataValidationError, InvalidParameterError
from .report import Issue, ValidationReport

__all__ = [
    "Policy",
    "resolve_policy",
    "PolicyEnforcer",
    "CsvQuarantineWriter",
    "JsonQuarantineWriter",
    "clean_stop_lengths",
]


class Policy(str, Enum):
    """How validation failures are handled (see module docstring)."""

    STRICT = "strict"
    REPAIR = "repair"
    QUARANTINE = "quarantine"


def resolve_policy(policy) -> Policy:
    """Coerce a policy name (or ``Policy``) to a :class:`Policy` member."""
    if isinstance(policy, Policy):
        return policy
    try:
        return Policy(str(policy).lower())
    except ValueError:
        valid = ", ".join(member.value for member in Policy)
        raise InvalidParameterError(
            f"unknown validation policy {policy!r}; expected one of: {valid}"
        ) from None


class CsvQuarantineWriter:
    """Lazily creates ``<source>.quarantine.csv`` and appends bad rows.

    Columns: ``line``, ``check``, then the raw fields of the offending
    row — enough to reconstruct, audit or re-ingest every diverted
    record.  The file is only created when the first record arrives.
    """

    def __init__(self, source: Path, report: ValidationReport) -> None:
        self.path = source.with_name(source.name + ".quarantine.csv")
        self._report = report
        self._handle = None
        self._writer = None
        self._seen_lines: set[int | None] = set()

    def write(self, line: int | None, check: str, row: list[str]) -> None:
        # One sidecar row per source record, keyed by its first finding.
        if line is not None and line in self._seen_lines:
            return
        self._seen_lines.add(line)
        if self._writer is None:
            self._handle = open(self.path, "w", newline="")
            self._writer = csv.writer(self._handle)
            self._writer.writerow(["line", "check", "fields..."])
            self._report.add_quarantine_path(self.path)
        self._writer.writerow(["" if line is None else line, check, *row])
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class JsonQuarantineWriter:
    """Collects bad JSON records and writes ``<source>.quarantine.json``.

    Format: a JSON array of ``{"index", "check", "record"}`` objects
    (record serialized with ``default=repr`` so even unserializable
    garbage is preserved as text).
    """

    def __init__(self, source: Path, report: ValidationReport) -> None:
        self.path = source.with_name(source.name + ".quarantine.json")
        self._report = report
        self._records: list[dict] = []
        self._seen_indices: set[int | None] = set()

    def write(self, index: int | None, check: str, record) -> None:
        if index is not None and index in self._seen_indices:
            return
        self._seen_indices.add(index)
        self._records.append({"index": index, "check": check, "record": record})

    def close(self) -> None:
        if self._records:
            self.path.write_text(
                json.dumps(self._records, indent=2, default=repr)
            )
            self._report.add_quarantine_path(self.path)


class PolicyEnforcer:
    """Applies one policy to a stream of check results.

    One enforcer per source file; ingestion code calls :meth:`flag` for
    every failed check and keeps the record only when it returns True.
    """

    def __init__(
        self,
        policy: Policy | str = Policy.STRICT,
        report: ValidationReport | None = None,
        source: str | Path | None = None,
        quarantine_writer=None,
    ) -> None:
        self.policy = resolve_policy(policy)
        self.report = report if report is not None else ValidationReport(self.policy.value)
        if self.report.policy is None:
            self.report.policy = self.policy.value
        self.source = str(source) if source is not None else None
        if self.source is not None:
            self.report.add_source(self.source)
        self._quarantine_writer = quarantine_writer

    def attach_quarantine_writer(self, writer) -> None:
        """Install the sidecar writer (needs the enforcer's report first)."""
        self._quarantine_writer = writer

    def flag(
        self,
        check: str,
        message: str,
        *,
        line: int | None = None,
        record=None,
        severity: str = "error",
        repaired: bool = False,
    ) -> bool:
        """Record one failed check; returns True when the record is kept.

        ``repaired=True`` marks a structural fix (a field replaced by its
        documented default) rather than a drop: the record is kept under
        ``repair``/``quarantine`` and the issue logged as ``repaired``.
        Warnings are always kept and never raise.
        """
        if severity == "warning":
            self.report.add(
                Issue(check, message, self.source, line, "reported", "warning")
            )
            return True
        if self.policy is Policy.STRICT:
            self.report.add(Issue(check, message, self.source, line, "raised"))
            raise DataValidationError(
                f"{self.source or 'input'}"
                + (f", line {line}" if line is not None else "")
                + f": {message}",
                check=check,
                source=self.source,
                line=line,
            )
        if repaired:
            self.report.add(Issue(check, message, self.source, line, "repaired"))
            return True
        if self.policy is Policy.QUARANTINE and self._quarantine_writer is not None:
            self._quarantine_writer.write(line, check, record)
            self.report.add(Issue(check, message, self.source, line, "quarantined"))
        else:
            self.report.add(Issue(check, message, self.source, line, "dropped"))
        return False

    def close(self) -> None:
        if self._quarantine_writer is not None:
            self._quarantine_writer.close()


def clean_stop_lengths(
    stop_lengths,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
    source: str | None = "stop-lengths",
) -> np.ndarray:
    """Validate an in-memory stop-length array under a policy.

    The array-level twin of the CSV row checks: non-finite or negative
    values raise under ``strict`` and are dropped (and logged with their
    0-based index) under ``repair``/``quarantine`` — there is no sidecar
    file for in-memory arrays, so both non-strict policies behave as
    ``repair`` here.  Returns the cleaned array.
    """
    enforcer = PolicyEnforcer(policy, report, source)
    y = np.asarray(stop_lengths, dtype=float).ravel()
    enforcer.report.records_checked += int(y.size)
    bad = ~np.isfinite(y) | (y < 0.0)
    if not bad.any():
        return y
    for index in np.flatnonzero(bad):
        value = float(y[index])
        check = "negative-duration" if np.isfinite(value) else "non-finite-duration"
        enforcer.flag(
            check,
            f"stop length at index {index} is {value!r}",
            line=int(index),
            record=[repr(float(value))],
        )
    return y[~bad]
