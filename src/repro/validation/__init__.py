"""Data validation, repair and quarantine — the ingestion safety layer.

Raw telemetry arrives dirty: NaN durations, negative stops, clock skew,
truncated files, manifests that disagree with their stop tables.  This
package is the single place those problems are detected and handled:

* :mod:`~repro.validation.schemas` — the check catalog (pure functions,
  stable check names);
* :mod:`~repro.validation.repair` — the ``strict`` / ``repair`` /
  ``quarantine`` policies and the deterministic drop/divert engine;
* :mod:`~repro.validation.report` — :class:`ValidationReport`, printable
  and emitted into the run ledger.

Every ingestion point routes through here: stop CSVs and trace JSON
(:mod:`repro.traces.io`), raw speed logs
(:mod:`repro.traces.segmentation`), fleet datasets
(:mod:`repro.fleet.io`), and the distribution constructors
(:mod:`repro.distributions`).  See ``docs/data-validation.md``.
"""

from .repair import (
    CsvQuarantineWriter,
    JsonQuarantineWriter,
    Policy,
    PolicyEnforcer,
    clean_stop_lengths,
    resolve_policy,
)
from .report import Issue, ValidationReport
from .schemas import (
    CHECKS,
    break_even_findings,
    manifest_area_findings,
    speed_sample_findings,
    stop_event_findings,
    stop_order_finding,
    stop_row_findings,
    trace_document_findings,
)

__all__ = [
    "Policy",
    "resolve_policy",
    "PolicyEnforcer",
    "CsvQuarantineWriter",
    "JsonQuarantineWriter",
    "clean_stop_lengths",
    "Issue",
    "ValidationReport",
    "CHECKS",
    "stop_row_findings",
    "stop_order_finding",
    "stop_event_findings",
    "trace_document_findings",
    "manifest_area_findings",
    "break_even_findings",
    "speed_sample_findings",
]
