"""The validation check catalog: pure record/structure checks.

Every check has a stable kebab-case name (the ``check`` field of
:class:`~repro.validation.report.Issue` and the key of quarantine rows)
listed in :data:`CHECKS`.  The functions here are *pure*: they inspect
one record or structure and return findings; policy handling (raise /
drop / quarantine) lives in :mod:`repro.validation.repair` and the
ingestion call sites.

A finding is a ``(check, message)`` pair; record-level helpers also
return the parsed values so ingestion does not parse twice.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "CHECKS",
    "stop_row_findings",
    "stop_order_finding",
    "stop_event_findings",
    "trace_document_findings",
    "manifest_area_findings",
    "break_even_findings",
    "speed_sample_findings",
]

#: Catalog: check name -> what it guards against.  Rendered in
#: ``docs/data-validation.md`` and the ``data doctor`` output.
CHECKS = {
    "bad-column-count": "CSV row does not have exactly the 3 schema columns",
    "empty-vehicle-id": "vehicle_id field is empty or whitespace",
    "unparseable-duration": "duration field is not a number",
    "non-finite-duration": "duration is NaN or infinite",
    "negative-duration": "duration is negative",
    "unparseable-start-time": "start_time field is not a number",
    "non-finite-start-time": "start_time is NaN or infinite",
    "negative-start-time": "start_time is negative",
    "out-of-order-stop": "stop starts before the vehicle's previous stop",
    "overlapping-stop": "stop starts before the previous stop ended",
    "empty-vehicle": "vehicle has no (remaining) stops",
    "empty-table": "file contains a header but no data rows",
    "malformed-document": "JSON trace document is structurally invalid",
    "duplicate-vehicle-id": "vehicle id listed more than once in the manifest",
    "scale-factor-count-mismatch": "scale_factors length differs from vehicle_ids",
    "bad-scale-factor": "scale factor is not a positive finite number",
    "vehicle-count-mismatch": "manifest vehicle_count disagrees with vehicle_ids",
    "missing-vehicle-stops": "manifest lists a vehicle absent from the stop table",
    "bad-recording-days": "recording_days is not a positive finite number",
    "suspicious-break-even": "break-even interval outside plausible seconds range",
    "non-positive-break-even": "break-even interval is not a positive finite number",
    "non-finite-speed": "speed sample is NaN or infinite",
    "negative-speed": "speed sample is negative",
    "inconsistent-column-count": "CSV row width differs from the header",
    "undecodable-bytes": "file is not valid UTF-8 text",
    "malformed-event": "stop event is not a JSON object with the schema fields",
    "duplicate-event-id": "stop event id was already applied (redelivery)",
    "non-monotonic-timestamp": "stop event timestamp runs behind the vehicle's clock",
}


def stop_row_findings(row: list[str]):
    """Check one stop-CSV row.

    Returns ``(findings, vehicle_id, start_time, duration)``; the parsed
    values are ``None`` when their field failed.  A row with any finding
    must not enter the dataset.
    """
    findings: list[tuple[str, str]] = []
    if len(row) != 3:
        return (
            [("bad-column-count", f"expected 3 columns, got {len(row)}")],
            None,
            None,
            None,
        )
    vehicle_id, start_text, duration_text = row
    if not vehicle_id.strip():
        findings.append(("empty-vehicle-id", "empty vehicle_id"))
        vehicle_id = None
    start_time = _parse_float(start_text, "start-time", findings)
    duration = _parse_float(duration_text, "duration", findings)
    return findings, vehicle_id, start_time, duration


def _parse_float(text: str, field: str, findings: list) -> float | None:
    try:
        value = float(text)
    except (TypeError, ValueError):
        findings.append((f"unparseable-{field}", f"bad {field} {text!r}"))
        return None
    if not math.isfinite(value):
        findings.append((f"non-finite-{field}", f"{field} is {value!r}"))
        return None
    if value < 0.0:
        findings.append((f"negative-{field}", f"{field} is {value!r}"))
        return None
    return value


def stop_order_finding(
    prev_start: float, prev_end: float, start_time: float
) -> tuple[str, str] | None:
    """Check a stop against the vehicle's previous stop (both valid rows).

    The *later* row is the offending one: telemetry clock skew shows up
    as a record whose timestamp runs backwards (out-of-order) or into the
    previous stop (overlap).
    """
    if start_time < prev_start:
        return (
            "out-of-order-stop",
            f"start_time {start_time!r} precedes previous stop start {prev_start!r}",
        )
    if start_time < prev_end:
        return (
            "overlapping-stop",
            f"start_time {start_time!r} falls inside previous stop ending {prev_end!r}",
        )
    return None


#: Required fields of one advisor-service stop event and their meaning.
#: ``id`` is the delivery-idempotency key, ``vehicle`` routes the event
#: to its session, ``t`` is the stop's start timestamp (seconds, any
#: monotone per-vehicle clock), ``stop`` the completed stop length (s).
STOP_EVENT_FIELDS = ("id", "vehicle", "t", "stop")


def stop_event_findings(record):
    """Check one advisor-service stop event (a parsed JSON value).

    Returns ``(findings, event)`` where ``event`` is the validated
    ``(id, vehicle, t, stop)`` tuple, or ``None`` when any finding makes
    the record unusable.  Ordering (monotone ``t``) and idempotency
    (fresh ``id``) are *stateful* checks performed by the session, not
    here — this function is pure per-record structure and value
    validation.
    """
    if not isinstance(record, dict):
        return (
            [("malformed-event", f"expected an object, got {type(record).__name__}")],
            None,
        )
    findings: list[tuple[str, str]] = []
    for field in STOP_EVENT_FIELDS:
        if field not in record:
            findings.append(("malformed-event", f"missing {field!r}"))
    if findings:
        return findings, None
    event_id = str(record["id"])
    vehicle = str(record["vehicle"])
    if not event_id.strip():
        findings.append(("malformed-event", "empty event id"))
    if not vehicle.strip():
        findings.append(("empty-vehicle-id", "empty vehicle id"))
    timestamp = _parse_float(str(record["t"]), "start-time", findings)
    stop_length = _parse_float(str(record["stop"]), "duration", findings)
    if findings:
        return findings, None
    return findings, (event_id, vehicle, timestamp, stop_length)


def trace_document_findings(document) -> list[tuple[str, str]]:
    """Structural checks for one JSON trace document.

    Detailed value validation is delegated to the
    :class:`~repro.traces.events` constructors; this catches the shapes
    that would crash them with untyped errors (non-dict documents,
    missing keys, non-list trips).
    """
    if not isinstance(document, dict):
        return [("malformed-document", f"expected an object, got {type(document).__name__}")]
    findings = []
    if "vehicle_id" not in document:
        findings.append(("malformed-document", "missing 'vehicle_id'"))
    trips = document.get("trips")
    if not isinstance(trips, list):
        findings.append(
            ("malformed-document", f"'trips' must be an array, got {type(trips).__name__}")
        )
    return findings


def manifest_area_findings(area: str, info) -> list[tuple[str, str]]:
    """Structural checks for one area entry of a dataset manifest.

    Per-vehicle issues (duplicates, missing stop rows, bad scale factors)
    are handled record-by-record in ``load_fleet_dataset`` so the repair
    policy can drop individual vehicles; this guards the aggregate
    fields.
    """
    findings = []
    if not isinstance(info, dict):
        return [("malformed-document", f"area {area!r}: entry must be an object")]
    ids = info.get("vehicle_ids")
    if not isinstance(ids, list):
        findings.append(
            ("malformed-document", f"area {area!r}: 'vehicle_ids' must be an array")
        )
        return findings
    scales = info.get("scale_factors")
    if scales is not None and not isinstance(scales, list):
        findings.append(
            ("malformed-document", f"area {area!r}: 'scale_factors' must be an array")
        )
    elif scales is not None and len(scales) != len(ids):
        findings.append(
            (
                "scale-factor-count-mismatch",
                f"area {area!r}: {len(scales)} scale_factors for {len(ids)} vehicle_ids",
            )
        )
    count = info.get("vehicle_count")
    if count is not None and count != len(ids):
        findings.append(
            (
                "vehicle-count-mismatch",
                f"area {area!r}: vehicle_count={count!r} but {len(ids)} vehicle_ids",
            )
        )
    days = info.get("recording_days", 7.0)
    if not isinstance(days, (int, float)) or not math.isfinite(days) or days <= 0.0:
        findings.append(
            ("bad-recording-days", f"area {area!r}: recording_days is {days!r}")
        )
    return findings


#: Plausible seconds range for a vehicle break-even interval.  The
#: paper's values are 28 s (SSV) and 47 s (conventional); anything
#: outside [1, 600] s most likely carries a unit mistake (minutes, or a
#: cents-scale cost) and is flagged as a warning.
BREAK_EVEN_PLAUSIBLE = (1.0, 600.0)


def break_even_findings(break_even: float) -> list[tuple[str, str, str]]:
    """Unit-sanity checks on ``B``; returns ``(check, message, severity)``.

    Non-positive or non-finite values are errors (the solver would reject
    them anyway); plausible-range violations are warnings.
    """
    try:
        b = float(break_even)
    except (TypeError, ValueError):
        return [
            (
                "non-positive-break-even",
                f"break-even interval {break_even!r} is not a number",
                "error",
            )
        ]
    if not math.isfinite(b) or b <= 0.0:
        return [
            (
                "non-positive-break-even",
                f"break-even interval must be a positive finite number, got {b!r}",
                "error",
            )
        ]
    lo, hi = BREAK_EVEN_PLAUSIBLE
    if not lo <= b <= hi:
        return [
            (
                "suspicious-break-even",
                f"break-even interval {b!r} s is outside the plausible "
                f"[{lo:g}, {hi:g}] s range — check the unit (seconds expected)",
                "warning",
            )
        ]
    return []


def speed_sample_findings(speeds: np.ndarray) -> list[tuple[int, str, str]]:
    """Per-sample findings for a raw speed array: ``(index, check, message)``."""
    y = np.asarray(speeds, dtype=float).ravel()
    findings = []
    bad = ~np.isfinite(y)
    for index in np.flatnonzero(bad):
        findings.append(
            (int(index), "non-finite-speed", f"speed sample {index} is {float(y[index])!r}")
        )
    negative = np.isfinite(y) & (y < 0.0)
    for index in np.flatnonzero(negative):
        findings.append(
            (int(index), "negative-speed", f"speed sample {index} is {float(y[index])!r}")
        )
    return findings
