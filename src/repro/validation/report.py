"""Validation issues and the per-run :class:`ValidationReport`.

Every ingestion point (stop CSVs, trace JSON, fleet datasets, raw speed
logs, distribution constructors) records what it checked and what it
found in a :class:`ValidationReport`: one :class:`Issue` per offending
record or structural problem, plus counters for how much data was seen
and how much was dropped or quarantined.  The report is

* printable (``format()`` — the ``repro-idling data doctor`` output),
* serializable (``to_dict()`` — written next to quarantine sidecars),
* and ledger-visible (``emit_to_ledger()`` — one ``validation`` event
  per validated source in the run ledger of :mod:`repro.engine.ledger`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Issue", "ValidationReport"]

#: Issue severities.  ``error`` records are rejected/dropped/quarantined
#: depending on the policy; ``warning`` records are kept but reported
#: (e.g. a suspicious break-even interval that is probably in minutes).
SEVERITIES = ("error", "warning")

#: What happened to the offending record.
ACTIONS = ("raised", "dropped", "quarantined", "repaired", "reported")


@dataclass(frozen=True)
class Issue:
    """One validation finding, with provenance.

    Attributes
    ----------
    check:
        Catalog name of the failed check (see
        :mod:`repro.validation.schemas`), e.g. ``"non-finite-duration"``.
    message:
        Human-readable description including the offending value.
    source:
        File (or logical source label) the record came from.
    line:
        1-based CSV line / JSON record index, when applicable.
    action:
        What the policy did: ``dropped``, ``quarantined``, ``repaired``
        (value replaced by a deterministic default), or ``reported``
        (kept — warnings and generic-lint findings).
    severity:
        ``error`` or ``warning``.
    """

    check: str
    message: str
    source: str | None = None
    line: int | None = None
    action: str = "reported"
    severity: str = "error"

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "action": self.action,
            "severity": self.severity,
        }


class ValidationReport:
    """Accumulates :class:`Issue` records for one validation pass.

    A single report may span several sources (``load_fleet_dataset``
    shares one across the manifest and the stop table), so issues carry
    their own ``source`` and the report only tracks totals.
    """

    def __init__(self, policy: str | None = None) -> None:
        self.policy = policy
        self.issues: list[Issue] = []
        self.records_checked = 0
        self.sources: list[str] = []
        #: Quarantine sidecar files written during this pass.
        self.quarantine_paths: list[Path] = []

    # -- recording ---------------------------------------------------------

    def add(self, issue: Issue) -> Issue:
        self.issues.append(issue)
        return issue

    def add_source(self, source: str) -> None:
        if source not in self.sources:
            self.sources.append(source)

    def add_quarantine_path(self, path: Path) -> None:
        if path not in self.quarantine_paths:
            self.quarantine_paths.append(path)

    # -- aggregation -------------------------------------------------------

    @property
    def error_count(self) -> int:
        return sum(1 for issue in self.issues if issue.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for issue in self.issues if issue.severity == "warning")

    @property
    def dropped_count(self) -> int:
        return sum(1 for issue in self.issues if issue.action == "dropped")

    @property
    def quarantined_count(self) -> int:
        return sum(1 for issue in self.issues if issue.action == "quarantined")

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return self.error_count == 0

    def counts_by_check(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.check] = counts.get(issue.check, 0) + 1
        return counts

    # -- output ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "sources": list(self.sources),
            "records_checked": self.records_checked,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "dropped": self.dropped_count,
            "quarantined": self.quarantined_count,
            "counts_by_check": self.counts_by_check(),
            "quarantine_paths": [str(path) for path in self.quarantine_paths],
            "issues": [issue.to_dict() for issue in self.issues],
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the full report as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    def format(self, max_issues: int = 50) -> str:
        """ASCII summary (the ``data doctor`` report body)."""
        lines = [
            f"policy:           {self.policy or 'strict'}",
            f"records checked:  {self.records_checked}",
            f"issues:           {len(self.issues)} "
            f"({self.error_count} error(s), {self.warning_count} warning(s))",
            f"dropped:          {self.dropped_count}",
            f"quarantined:      {self.quarantined_count}",
        ]
        if self.counts_by_check():
            lines.append("by check:")
            for check, count in sorted(self.counts_by_check().items()):
                lines.append(f"  {check:<28} {count}")
        for issue in self.issues[:max_issues]:
            where = issue.source or "?"
            if issue.line is not None:
                where += f":{issue.line}"
            lines.append(f"  [{issue.severity}] {where}: {issue.message} "
                         f"({issue.action})")
        if len(self.issues) > max_issues:
            lines.append(f"  ... {len(self.issues) - max_issues} more issue(s)")
        for path in self.quarantine_paths:
            lines.append(f"quarantine file:  {path}")
        return "\n".join(lines)

    def emit_to_ledger(self, ledger=None, source: str | None = None) -> None:
        """Emit one ``validation`` event summarizing this report.

        Uses the ambient :func:`repro.engine.ledger.active_ledger` when no
        ledger is passed; a no-op when neither is available, so ingestion
        can call this unconditionally.
        """
        if ledger is None:
            from ..engine.ledger import active_ledger

            ledger = active_ledger()
        if ledger is None:
            return
        ledger.emit(
            "validation",
            source=source or (self.sources[-1] if self.sources else None),
            policy=self.policy,
            checked=self.records_checked,
            errors=self.error_count,
            warnings=self.warning_count,
            dropped=self.dropped_count,
            quarantined=self.quarantined_count,
            checks=self.counts_by_check(),
        )
