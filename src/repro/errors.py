"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its mathematically valid domain.

    Examples: a negative break-even interval, a probability outside
    ``[0, 1]``, or statistics that no stop-length distribution can satisfy
    (``mu_B_minus > (1 - q_B_plus) * B``).
    """


class InvalidDistributionError(ReproError, ValueError):
    """A probability distribution is malformed (negative mass, pdf that
    does not integrate to one, unsorted support, ...)."""


class TraceFormatError(ReproError, ValueError):
    """A driving trace or trace file violates the expected format."""


class SimulationError(ReproError, RuntimeError):
    """The drive-cycle or stop-start simulation reached an invalid state."""


class SolverError(ReproError, RuntimeError):
    """The LP or optimization cross-check failed to converge or disagreed
    with the analytic solution beyond tolerance."""
