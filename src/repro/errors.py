"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its mathematically valid domain.

    Examples: a negative break-even interval, a probability outside
    ``[0, 1]``, or statistics that no stop-length distribution can satisfy
    (``mu_B_minus > (1 - q_B_plus) * B``).
    """


class InvalidDistributionError(ReproError, ValueError):
    """A probability distribution is malformed (negative mass, pdf that
    does not integrate to one, unsorted support, ...)."""


class TraceFormatError(ReproError, ValueError):
    """A driving trace or trace file violates the expected format."""


class DataValidationError(TraceFormatError):
    """A data record failed a validation check under the ``strict`` policy.

    Subclasses :class:`TraceFormatError` so existing ``except
    TraceFormatError`` call sites keep working; adds provenance so error
    messages (and programmatic handlers) can point at the offending
    record.

    Attributes
    ----------
    check:
        Name of the failed check from the catalog in
        :mod:`repro.validation.schemas` (e.g. ``"non-finite-duration"``).
    source:
        The file or logical source the record came from, if known.
    line:
        1-based line (CSV) or record index (JSON) of the offending
        record, if known.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str | None = None,
        source: str | None = None,
        line: int | None = None,
    ) -> None:
        super().__init__(message)
        self.check = check
        self.source = source
        self.line = line


class DegenerateStatisticsError(InvalidParameterError):
    """The ``(mu_B_minus, q_B_plus, B)`` statistics admit no competitive
    ratio: the expected offline cost ``mu_B_minus + q_B_plus * B`` is zero
    (every compatible stop has zero length), so every CR is 0/0.

    Raised uniformly by the constrained solver
    (:class:`repro.core.constrained.ConstrainedSkiRentalSolver`), the lean
    selector (:func:`repro.evaluation.batch.select_vertex`), the improved
    solver (:class:`repro.core.brand.ImprovedConstrainedSolver`) and
    :meth:`repro.evaluation.batch.StrategyPlan.crs_on`.  Subclasses
    :class:`InvalidParameterError` so pre-existing handlers keep working,
    while callers that can *recover* (e.g. by skipping a vehicle) can
    catch this specific type.
    """


class SimulationError(ReproError, RuntimeError):
    """The drive-cycle or stop-start simulation reached an invalid state."""


class SolverError(ReproError, RuntimeError):
    """The LP or optimization cross-check failed to converge or disagreed
    with the analytic solution beyond tolerance."""
