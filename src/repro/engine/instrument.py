"""Per-stage wall-time and task-count instrumentation.

Experiments wrap their phases (fleet generation, per-``B`` evaluation,
sweeps, ...) in :meth:`Instrumentation.stage` and attach the collected
:class:`StageTiming` records to their ``ExperimentResult``, which
renders them as a ``timings`` section in the CLI report.  ``tasks``
records how many units of work the stage fanned out (vehicles, grid
rows, repetitions), so throughput is readable directly from the report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["StageTiming", "Instrumentation"]


@dataclass(frozen=True)
class StageTiming:
    """One timed stage of an experiment run."""

    stage: str
    seconds: float
    tasks: int | None = None

    def to_payload(self) -> dict:
        return {"stage": self.stage, "seconds": self.seconds, "tasks": self.tasks}

    @classmethod
    def from_payload(cls, payload: dict) -> "StageTiming":
        # ``tasks`` was added after the first cached payloads shipped, so
        # it must stay optional on read (pre-existing entries lack it).
        return cls(
            stage=payload["stage"],
            seconds=payload["seconds"],
            tasks=payload.get("tasks"),
        )


class Instrumentation:
    """Collects :class:`StageTiming` records for one experiment run."""

    def __init__(self) -> None:
        self.timings: list[StageTiming] = []

    @contextmanager
    def stage(self, name: str, tasks: int | None = None):
        """Time a ``with`` block as one stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start, tasks)

    def add(self, name: str, seconds: float, tasks: int | None = None) -> None:
        self.timings.append(StageTiming(stage=name, seconds=float(seconds), tasks=tasks))
