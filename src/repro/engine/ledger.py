"""Structured run ledger: JSONL events with monotonic timestamps.

Long-horizon runs (multi-hour sweeps, pause/resume-style workloads)
need an answer to "what actually happened?" that survives the run: how
many tasks ran, which were retried, when a worker pool crashed, which
results came from the cache.  :class:`RunLedger` collects those events
in memory and — when given a path — appends each one as a JSON line the
moment it is emitted, so a killed run still leaves a complete record of
everything up to the kill.

Event schema (every record):

``{"seq": int, "t": float, "event": str, ...fields}``

* ``seq`` — 0-based emission index, contiguous per ledger;
* ``t`` — seconds since the ledger was created, from
  ``time.monotonic()`` (never jumps backwards, unaffected by wall-clock
  adjustments);
* ``event`` — the event name; the engine emits ``map-start``,
  ``task-start``, ``task-finish``, ``task-retry``, ``task-timeout``,
  ``pool-crash``, ``serial-fallback``, ``checkpoint-hit``,
  ``map-finish``, and the experiment cache layer adds ``cache-hit`` /
  ``cache-miss``;
* remaining fields are event-specific (task index, attempt number,
  error text, ...).

The *active* ledger is carried in a :mod:`contextvars` variable so the
engine can log without every call site threading a ledger argument:
wrap a run in :func:`use_ledger` (the CLI does this for ``--ledger``)
and every :class:`~repro.engine.parallel.ParallelMap` underneath logs
to it.  All events are emitted from the parent process, so ``seq`` and
``t`` are globally ordered.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

__all__ = ["RunLedger", "active_ledger", "use_ledger"]

_ACTIVE: ContextVar["RunLedger | None"] = ContextVar("repro_run_ledger", default=None)


def active_ledger() -> "RunLedger | None":
    """The ledger installed by the innermost :func:`use_ledger`, if any."""
    return _ACTIVE.get()


@contextmanager
def use_ledger(ledger: "RunLedger"):
    """Make ``ledger`` the active ledger inside the ``with`` block."""
    token = _ACTIVE.set(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.reset(token)


class RunLedger:
    """Append-only event log for one run.

    Parameters
    ----------
    path:
        Optional JSONL file.  Truncated at construction (one ledger =
        one run) and appended to on every :meth:`emit`, so the on-disk
        record is complete even if the process dies mid-run.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._origin = time.monotonic()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    def emit(self, event: str, **fields) -> dict:
        """Record one event; returns the full record."""
        record = {
            "seq": len(self.events),
            "t": round(time.monotonic() - self._origin, 6),
            "event": event,
        }
        record.update(fields)
        self.events.append(record)
        if self.path is not None:
            with open(self.path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
        return record

    def count(self, event: str) -> int:
        """How many events of one type were emitted."""
        return sum(1 for record in self.events if record["event"] == event)

    def summary(self) -> dict[str, int]:
        """Event-type counts, in first-emission order."""
        counts: dict[str, int] = {}
        for record in self.events:
            counts[record["event"]] = counts.get(record["event"], 0) + 1
        return counts
