"""Structured run ledger: JSONL events with monotonic timestamps.

Long-horizon runs (multi-hour sweeps, pause/resume-style workloads)
need an answer to "what actually happened?" that survives the run: how
many tasks ran, which were retried, when a worker pool crashed, which
results came from the cache.  :class:`RunLedger` collects those events
in memory and — when given a path — appends each one as a JSON line the
moment it is emitted, so a killed run still leaves a complete record of
everything up to the kill.

Event schema (every record):

``{"seq": int, "t": float, "event": str, ...fields}``

* ``seq`` — 0-based emission index, contiguous per ledger;
* ``t`` — seconds since the ledger was created, from
  ``time.monotonic()`` (never jumps backwards, unaffected by wall-clock
  adjustments);
* ``event`` — the event name; the engine emits ``map-start``,
  ``task-start``, ``task-finish``, ``task-retry``, ``task-timeout``,
  ``pool-crash``, ``serial-fallback``, ``checkpoint-hit``,
  ``map-finish``, and the experiment cache layer adds ``cache-hit`` /
  ``cache-miss``;
* remaining fields are event-specific (task index, attempt number,
  error text, ...).

The *active* ledger is carried in a :mod:`contextvars` variable so the
engine can log without every call site threading a ledger argument:
wrap a run in :func:`use_ledger` (the CLI does this for ``--ledger``)
and every :class:`~repro.engine.parallel.ParallelMap` underneath logs
to it.  All events are emitted from the parent process, so ``seq`` and
``t`` are globally ordered.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

__all__ = ["RunLedger", "active_ledger", "read_ledger", "use_ledger"]

_ACTIVE: ContextVar["RunLedger | None"] = ContextVar("repro_run_ledger", default=None)


def active_ledger() -> "RunLedger | None":
    """The ledger installed by the innermost :func:`use_ledger`, if any."""
    return _ACTIVE.get()


@contextmanager
def use_ledger(ledger: "RunLedger"):
    """Make ``ledger`` the active ledger inside the ``with`` block."""
    token = _ACTIVE.set(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.reset(token)


def read_ledger(path: str | Path) -> list[dict]:
    """Read a JSONL ledger file, tolerating a torn final line.

    A process killed mid-:meth:`RunLedger.emit` can leave a partial last
    line (no trailing newline, or truncated JSON).  Readers of a ledger
    that may belong to a crashed run — the CLI ``ledger`` summary, the
    soak harness, tests — must not die on that tail, so the *final*
    undecodable line is silently skipped.  An undecodable line anywhere
    else means real corruption and still raises ``json.JSONDecodeError``.
    """
    records: list[dict] = []
    lines = Path(path).read_text().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise
    return records


class RunLedger:
    """Append-only event log for one run.

    Parameters
    ----------
    path:
        Optional JSONL file.  Truncated at construction (one ledger =
        one run) and appended to on every :meth:`emit`, so the on-disk
        record is complete even if the process dies mid-run.
    fsync:
        When True every :meth:`emit` fsyncs the file, so the record
        survives not just a process kill (flush already guarantees
        that) but an OS crash or power loss.  Off by default — it turns
        every event into a disk round-trip.
    append:
        Keep an existing file's records instead of truncating, and
        continue ``seq`` after them.  Used by restartable services
        (``repro-idling serve``) so one ledger spans every kill/restart
        cycle of a run; a torn final line left by the previous crash is
        not counted (see :func:`read_ledger`).
    fs:
        Optional fault-injection shim (``check(op, path)``) consulted
        before each on-disk append — how disk-fault tests schedule
        ``OSError`` deterministically
        (:class:`repro.engine.faults.FsFaultInjector`).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        fsync: bool = False,
        append: bool = False,
        fs=None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = bool(fsync)
        self.events: list[dict] = []
        #: Disk-write failures swallowed by :meth:`emit` (see there).
        self.io_errors = 0
        self.last_io_error: str | None = None
        self._fs = fs
        self._seq_base = 0
        self._origin = time.monotonic()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if append and self.path.exists():
                self._repair_torn_tail()
                self._seq_base = len(read_ledger(self.path))
            else:
                self.path.write_text("")

    def _repair_torn_tail(self) -> None:
        """Heal a torn final line before appending after a crash.

        Appending blindly after a torn line would merge the next record
        into it: the merged line silently vanishes from readers while it
        stays final, then raises once more records follow.  A complete
        record that lost only its newline gets one (the event is kept);
        a partial line is dropped.  The rewrite goes through a temp file
        + ``os.replace`` so a crash here never loses intact records.
        """
        raw = self.path.read_text()
        if not raw:
            return
        lines = raw.splitlines(keepends=True)
        last = lines[-1]
        if last.endswith("\n"):
            try:
                json.loads(last)
                return
            except ValueError:
                lines = lines[:-1]  # at-rest torn line: unreadable, drop it
        else:
            try:
                json.loads(last)
            except ValueError:
                lines = lines[:-1]  # partial write: never fully emitted
            else:
                lines[-1] = last + "\n"  # complete record, newline was lost
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        tmp.write_text("".join(lines))
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str | Path) -> "RunLedger":
        """Read an on-disk ledger back for inspection (summaries, tests).

        The returned ledger is detached (``path=None``) so loading never
        truncates or extends the file it read.  A torn final line from a
        crashed writer is skipped, per :func:`read_ledger`.
        """
        ledger = cls()
        ledger.events = read_ledger(path)
        return ledger

    def emit(self, event: str, **fields) -> dict:
        """Record one event; returns the full record.

        The ledger is telemetry, not state: a disk that cannot take the
        append (``ENOSPC``, ``EIO``, read-only FS) must not take the run
        down with it.  Write failures keep the in-memory record, bump
        :attr:`io_errors` and are otherwise swallowed — the ledger heals
        by itself once the disk does, with a gap in the on-disk file but
        contiguous ``seq`` values recording how much was lost.
        """
        record = {
            "seq": self._seq_base + len(self.events),
            "t": round(time.monotonic() - self._origin, 6),
            "event": event,
        }
        record.update(fields)
        self.events.append(record)
        if self.path is not None:
            try:
                if self._fs is not None:
                    self._fs.check("ledger-emit", self.path)
                with open(self.path, "a") as handle:
                    handle.write(
                        json.dumps(record, sort_keys=True, default=repr) + "\n"
                    )
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
            except OSError as exc:
                self.io_errors += 1
                self.last_io_error = repr(exc)
        return record

    def count(self, event: str) -> int:
        """How many events of one type were emitted."""
        return sum(1 for record in self.events if record["event"] == event)

    def summary(self) -> dict[str, int]:
        """Event-type counts, in first-emission order."""
        counts: dict[str, int] = {}
        for record in self.events:
            counts[record["event"]] = counts.get(record["event"], 0) + 1
        return counts
