"""Deterministic fault injection for exercising ParallelMap recovery.

Testing the engine's failure paths (retry, timeout, pool-crash
recovery, serial fallback) requires faults that fire *exactly* where
and *exactly* as often as the test says — across worker processes,
across pool rebuilds, without wall-clock races.  :class:`FaultInjector`
wraps a task function and fires a :class:`Fault` the first ``times``
attempts a chosen item is executed, then steps aside forever, so a
"flaky" task deterministically fails N times and then succeeds.

The once-per-attempt bookkeeping must survive the process boundary
(the faulting attempt may run in a worker that is then SIGKILLed), so
claims are sentinel files created with ``O_CREAT | O_EXCL`` in a shared
``state_dir`` — atomic on every platform, and naturally shared between
the parent, every worker, and every rebuilt pool.

Fault kinds
-----------
``"raise"``
    Raise :class:`InjectedFault` (a plain task failure — exercises the
    retry/backoff path).
``"hang"``
    Sleep ``hang_seconds`` *before* computing the normal result
    (exercises the per-task timeout path; without a timeout the map
    merely slows down and results are unchanged).
``"kill"``
    ``SIGKILL`` the current worker process (exercises
    ``BrokenProcessPool`` recovery).  As a safety net the injector
    remembers the pid that built it and downgrades ``kill`` to
    :class:`InjectedFault` when it fires in that process, so a serial
    fallback run can never SIGKILL the test (or CLI) process itself.

The wrapper is picklable as long as the wrapped function is (the same
module-level-callable rule as ParallelMap itself).

Claim files record the pid of the process that claimed them plus its
``/proc`` start-time token (:func:`owner_record`), so a recycled pid
cannot impersonate the original owner.  A run that dies abnormally
(SIGKILL, OOM) leaves its claims behind, and a *rerun* in the same
``state_dir`` would then see every fault as already fired — silently
changing the rerun's behaviour.
:func:`sweep_stale_claims` removes claims held by dead owners; it is an
explicit doctor-style cleanup (``repro-idling cache doctor
--fault-claims DIR``, or :meth:`FaultInjector.sweep_stale`), **not**
automatic, because within one run a SIGKILLed worker's claim is the
record that its ``"kill"`` fault already fired and must survive.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from dataclasses import dataclass

from ..errors import InvalidParameterError

__all__ = [
    "Fault",
    "FaultInjector",
    "FsFault",
    "FsFaultInjector",
    "InjectedFault",
    "NetFault",
    "NetFaultInjector",
    "owner_alive",
    "owner_record",
    "pid_alive",
    "process_token",
    "sweep_stale_claims",
]

_KINDS = ("raise", "hang", "kill")


class InjectedFault(Exception):
    """Raised by a ``"raise"``-kind (or parent-side ``"kill"``) fault."""


@dataclass(frozen=True)
class Fault:
    """One fault to inject on one item: what, and how many attempts."""

    kind: str
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise InvalidParameterError(f"fault times must be >= 1, got {self.times}")
        if self.hang_seconds < 0:
            raise InvalidParameterError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )


def _item_digest(item) -> str:
    """Stable per-item key (items are matched by ``repr``)."""
    return hashlib.sha256(repr(item).encode()).hexdigest()[:16]


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently names a live process.

    Signal 0 performs the permission/existence check without delivering
    anything; ``EPERM`` means the process exists but belongs to someone
    else, so it still counts as alive.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


#: Public name for the dead-pid check — shared by fault-claim sweeping
#: here and shard-lock sweeping in :mod:`repro.service.shard`.
pid_alive = _pid_alive


def process_token(pid: int) -> str | None:
    """A reuse-proof identity token for ``pid``: its start time.

    Field 22 of ``/proc/<pid>/stat`` is the process start time in clock
    ticks since boot, so the (pid, start-time) pair stays unique for
    the life of the machine — a recycled pid gets a different token and
    can no longer masquerade as the original claim owner.  Returns
    ``None`` where procfs is absent (macOS, restricted containers);
    callers then fall back to the plain dead-pid check.
    """
    try:
        with open(f"/proc/{int(pid)}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
    except (OSError, ValueError):
        return None
    # comm (field 2) is parenthesized and may itself contain spaces or
    # ')' — the remaining fields start after the *last* ')'.
    _, closed, tail = stat.rpartition(")")
    if not closed:
        return None
    fields = tail.split()
    # starttime is field 22 of the full line = index 19 after comm/state.
    if len(fields) < 20:
        return None
    return fields[19]


def owner_record() -> str:
    """What a claim/lock file records: ``"<pid> <token>"``.

    Falls back to the bare pid where :func:`process_token` is
    unavailable — readers treat a token-less record exactly as the
    pre-token format.
    """
    pid = os.getpid()
    token = process_token(pid)
    return f"{pid} {token}" if token is not None else str(pid)


def owner_alive(text: str) -> bool:
    """Whether the owner recorded in a claim/lock file is still alive.

    ``text`` is ``"<pid>"`` (legacy records) or ``"<pid> <token>"``.
    Unreadable records count as dead, and so does a live pid whose
    current start-time token differs from the recorded one — that pid
    was reused by an unrelated process, and honouring it would leave a
    genuinely stale lock in place forever.
    """
    parts = text.split()
    if not parts:
        return False
    try:
        pid = int(parts[0])
    except ValueError:
        return False
    if not _pid_alive(pid):
        return False
    if len(parts) > 1:
        current = process_token(pid)
        if current is not None and current != parts[1]:
            return False
    return True


def sweep_stale_claims(state_dir) -> list[str]:
    """Remove claim files whose claiming process is dead.

    Returns the removed paths.  A claim with no readable pid (created
    before pids were recorded, or torn by a crash mid-write) is treated
    as stale — its owner cannot be identified, and keeping it would make
    reruns in the same ``state_dir`` non-deterministic.  Claims carry a
    start-time token alongside the pid (see :func:`owner_record`), so a
    recycled pid no longer makes a genuinely stale claim look live;
    token-less legacy claims keep the plain dead-pid check.
    """
    removed: list[str] = []
    try:
        names = sorted(os.listdir(state_dir))
    except FileNotFoundError:
        return removed
    for name in names:
        path = os.path.join(state_dir, name)
        if not os.path.isfile(path):
            continue
        try:
            text = open(path).read().strip()
        except OSError:
            continue
        if not owner_alive(text):
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            removed.append(path)
    return removed


class FaultInjector:
    """Wrap ``fn`` so chosen items fault on their first ``times`` attempts.

    Parameters
    ----------
    fn:
        The real task function (module-level callable).
    faults:
        ``{item: Fault}`` — items are matched by ``repr``, so any
        deterministic-``repr`` task item works as a key.
    state_dir:
        Directory for the cross-process claim sentinels; use a fresh
        temporary directory per test.
    """

    def __init__(self, fn, faults: dict, state_dir) -> None:
        self.fn = fn
        self.faults = {_item_digest(item): fault for item, fault in faults.items()}
        self.state_dir = str(state_dir)
        self._creator_pid = os.getpid()

    def sweep_stale(self) -> list[str]:
        """Remove claims left by dead processes (see module docstring)."""
        return sweep_stale_claims(self.state_dir)

    def _claim(self, digest: str, fault: Fault) -> bool:
        """Atomically claim one of the fault's ``times`` firings.

        The claim file records the claiming pid plus its start-time
        token (:func:`owner_record`) so an abnormal exit can later be
        recognized (and swept) by :func:`sweep_stale_claims` even if
        the pid has been recycled.
        """
        os.makedirs(self.state_dir, exist_ok=True)
        for attempt in range(fault.times):
            path = os.path.join(self.state_dir, f"{digest}.{attempt}")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            try:
                os.write(handle, owner_record().encode())
            finally:
                os.close(handle)
            return True
        return False

    def __call__(self, item):
        digest = _item_digest(item)
        fault = self.faults.get(digest)
        if fault is not None and self._claim(digest, fault):
            if fault.kind == "raise":
                raise InjectedFault(f"injected failure on item {item!r}")
            if fault.kind == "kill":
                if os.getpid() == self._creator_pid or not hasattr(signal, "SIGKILL"):
                    raise InjectedFault(
                        f"injected kill on item {item!r} downgraded in parent process"
                    )
                os.kill(os.getpid(), signal.SIGKILL)
            # "hang": delay, then fall through to the normal result so
            # an un-timed-out hang changes nothing but wall time.
            time.sleep(fault.hang_seconds)
        return self.fn(item)


# -- filesystem fault injection --------------------------------------------


@dataclass(frozen=True)
class FsFault:
    """One disk-fault window: ``count`` consecutive failing operations.

    ``errno_code`` is the ``errno`` value carried by the injected
    :class:`OSError` — ``ENOSPC`` (disk full) by default; ``EIO`` and
    ``EROFS`` model media errors and a remounted-read-only filesystem.
    """

    errno_code: int = errno.ENOSPC
    count: int = 1

    def __post_init__(self) -> None:
        if self.errno_code < 1:
            raise InvalidParameterError(
                f"errno_code must be a positive errno, got {self.errno_code}"
            )
        if self.count < 1:
            raise InvalidParameterError(f"fault count must be >= 1, got {self.count}")


class FsFaultInjector:
    """Deterministic disk faults for the durability layer's write path.

    The WAL/snapshot/ledger writers consult :meth:`check` immediately
    before each physical operation (append, publish, reset, probe).
    Every call advances a global 1-based operation ordinal; when the
    ordinal hits a key of ``faults``, a **down window** opens and that
    operation — plus the next ``count - 1`` checks — raises ``OSError``
    with the fault's errno, after which the disk "heals" and checks pass
    again.  Ordinals make schedules reproducible without wall clocks,
    the same way :class:`FaultInjector` keys kills to task items.

    Window activation goes through the same ``O_CREAT | O_EXCL`` claim
    files as the task injector (one claim per window, under
    ``state_dir``), so a rerun over the same state directory — the soak
    harness's recovery cycle — sees each window fire exactly once.

    The ordinal counter is in-process state: share ONE injector across
    the sessions of one service (``AdvisorService(fs=...)`` does) so
    the schedule covers the interleaved stream, not one file.
    """

    def __init__(self, faults: dict[int, FsFault], state_dir) -> None:
        self.faults = {}
        for ordinal, fault in faults.items():
            ordinal = int(ordinal)
            if ordinal < 1:
                raise InvalidParameterError(
                    f"fault ordinals are 1-based, got {ordinal}"
                )
            self.faults[ordinal] = fault
        self.state_dir = str(state_dir)
        self.ops = 0
        self.raised = 0
        self._windows: list[tuple[int, int]] = []  # (first op past window, errno)

    def _claim(self, ordinal: int) -> bool:
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(self.state_dir, f"fs.{ordinal}")
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(handle, owner_record().encode())
        finally:
            os.close(handle)
        return True

    def check(self, op: str, path) -> None:
        """Count one disk operation; raise if it falls in a down window.

        ``op`` and ``path`` only label the injected error — scheduling
        is purely ordinal, so a test can place a window without knowing
        which file the Nth operation happens to touch.
        """
        self.ops += 1
        fault = self.faults.get(self.ops)
        if fault is not None and self._claim(self.ops):
            self._windows.append((self.ops + fault.count, fault.errno_code))
        for until, code in self._windows:
            if self.ops < until:
                self.raised += 1
                name = errno.errorcode.get(code, str(code))
                raise OSError(code, f"injected {name} during {op}", str(path))
        self._windows = [window for window in self._windows if self.ops < window[0]]


# -- network fault injection ------------------------------------------------


@dataclass(frozen=True)
class NetFault:
    """One network-fault window: ``count`` consecutive dropped operations."""

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise InvalidParameterError(f"fault count must be >= 1, got {self.count}")


class NetFaultInjector:
    """Deterministic connection drops for the replication channel.

    The remote replica target consults :meth:`check` before each channel
    operation (``connect``, then one ``send`` per op in an exchange).
    Scheduling mirrors :class:`FsFaultInjector` exactly — a global
    1-based ordinal, down windows of ``count`` consecutive failures, and
    ``O_CREAT | O_EXCL`` claim files so a retried exchange over the same
    state directory sees each window fire exactly once — but the injected
    error is :class:`ConnectionResetError`, which the shipping loop
    counts and retries (every replication op is idempotent) rather than
    treating as a durability fault.
    """

    def __init__(self, faults: dict[int, NetFault], state_dir) -> None:
        self.faults = {}
        for ordinal, fault in faults.items():
            ordinal = int(ordinal)
            if ordinal < 1:
                raise InvalidParameterError(
                    f"fault ordinals are 1-based, got {ordinal}"
                )
            self.faults[ordinal] = fault
        self.state_dir = str(state_dir)
        self.ops = 0
        self.raised = 0
        self._windows: list[int] = []  # first op past each window

    def _claim(self, ordinal: int) -> bool:
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(self.state_dir, f"net.{ordinal}")
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(handle, owner_record().encode())
        finally:
            os.close(handle)
        return True

    def check(self, op: str) -> None:
        """Count one channel operation; drop it if in a down window."""
        self.ops += 1
        fault = self.faults.get(self.ops)
        if fault is not None and self._claim(self.ops):
            self._windows.append(self.ops + fault.count)
        for until in self._windows:
            if self.ops < until:
                self.raised += 1
                raise ConnectionResetError(f"injected connection drop during {op}")
        self._windows = [until for until in self._windows if self.ops < until]
