"""Deterministic fault injection for exercising ParallelMap recovery.

Testing the engine's failure paths (retry, timeout, pool-crash
recovery, serial fallback) requires faults that fire *exactly* where
and *exactly* as often as the test says — across worker processes,
across pool rebuilds, without wall-clock races.  :class:`FaultInjector`
wraps a task function and fires a :class:`Fault` the first ``times``
attempts a chosen item is executed, then steps aside forever, so a
"flaky" task deterministically fails N times and then succeeds.

The once-per-attempt bookkeeping must survive the process boundary
(the faulting attempt may run in a worker that is then SIGKILLed), so
claims are sentinel files created with ``O_CREAT | O_EXCL`` in a shared
``state_dir`` — atomic on every platform, and naturally shared between
the parent, every worker, and every rebuilt pool.

Fault kinds
-----------
``"raise"``
    Raise :class:`InjectedFault` (a plain task failure — exercises the
    retry/backoff path).
``"hang"``
    Sleep ``hang_seconds`` *before* computing the normal result
    (exercises the per-task timeout path; without a timeout the map
    merely slows down and results are unchanged).
``"kill"``
    ``SIGKILL`` the current worker process (exercises
    ``BrokenProcessPool`` recovery).  As a safety net the injector
    remembers the pid that built it and downgrades ``kill`` to
    :class:`InjectedFault` when it fires in that process, so a serial
    fallback run can never SIGKILL the test (or CLI) process itself.

The wrapper is picklable as long as the wrapped function is (the same
module-level-callable rule as ParallelMap itself).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass

from ..errors import InvalidParameterError

__all__ = ["Fault", "FaultInjector", "InjectedFault"]

_KINDS = ("raise", "hang", "kill")


class InjectedFault(Exception):
    """Raised by a ``"raise"``-kind (or parent-side ``"kill"``) fault."""


@dataclass(frozen=True)
class Fault:
    """One fault to inject on one item: what, and how many attempts."""

    kind: str
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise InvalidParameterError(f"fault times must be >= 1, got {self.times}")
        if self.hang_seconds < 0:
            raise InvalidParameterError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )


def _item_digest(item) -> str:
    """Stable per-item key (items are matched by ``repr``)."""
    return hashlib.sha256(repr(item).encode()).hexdigest()[:16]


class FaultInjector:
    """Wrap ``fn`` so chosen items fault on their first ``times`` attempts.

    Parameters
    ----------
    fn:
        The real task function (module-level callable).
    faults:
        ``{item: Fault}`` — items are matched by ``repr``, so any
        deterministic-``repr`` task item works as a key.
    state_dir:
        Directory for the cross-process claim sentinels; use a fresh
        temporary directory per test.
    """

    def __init__(self, fn, faults: dict, state_dir) -> None:
        self.fn = fn
        self.faults = {_item_digest(item): fault for item, fault in faults.items()}
        self.state_dir = str(state_dir)
        self._creator_pid = os.getpid()

    def _claim(self, digest: str, fault: Fault) -> bool:
        """Atomically claim one of the fault's ``times`` firings."""
        os.makedirs(self.state_dir, exist_ok=True)
        for attempt in range(fault.times):
            path = os.path.join(self.state_dir, f"{digest}.{attempt}")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    def __call__(self, item):
        digest = _item_digest(item)
        fault = self.faults.get(digest)
        if fault is not None and self._claim(digest, fault):
            if fault.kind == "raise":
                raise InjectedFault(f"injected failure on item {item!r}")
            if fault.kind == "kill":
                if os.getpid() == self._creator_pid or not hasattr(signal, "SIGKILL"):
                    raise InjectedFault(
                        f"injected kill on item {item!r} downgraded in parent process"
                    )
                os.kill(os.getpid(), signal.SIGKILL)
            # "hang": delay, then fall through to the normal result so
            # an un-timed-out hang changes nothing but wall time.
            time.sleep(fault.hang_seconds)
        return self.fn(item)
