"""Parallel experiment engine: execution backends, deterministic seed
fan-out, the on-disk result cache, and per-stage instrumentation.

This package is the scaling substrate every experiment and evaluation
helper builds on (see ``docs/engine.md``):

* :class:`ParallelMap` — order-preserving map over tasks with a serial
  or ``ProcessPoolExecutor`` backend, selected by ``jobs`` / the
  ``REPRO_JOBS`` environment variable;
* :func:`spawn_seeds` / :func:`spawn_rngs` — ``SeedSequence``-based
  fan-out, so serial and parallel runs draw identical random streams
  regardless of worker count;
* :class:`ResultCache` — content-addressed experiment-result cache
  keyed by (experiment id, params, code version) with hit/miss
  counters;
* :class:`Instrumentation` — per-stage wall-time and task-count
  records surfaced in every ``ExperimentResult`` report.

Layering: ``engine`` depends only on numpy and ``repro.errors`` —
everything above it (fleet, evaluation, experiments, cli) may use it.
"""

from .cache import ResultCache, cache_key, code_version, default_cache_dir
from .instrument import Instrumentation, StageTiming
from .parallel import ParallelMap, ParallelTaskError, get_default_jobs, parallel_map
from .seeding import spawn_rngs, spawn_seeds

__all__ = [
    "ParallelMap",
    "ParallelTaskError",
    "parallel_map",
    "get_default_jobs",
    "spawn_seeds",
    "spawn_rngs",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "Instrumentation",
    "StageTiming",
]
