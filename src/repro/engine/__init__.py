"""Parallel experiment engine: execution backends, deterministic seed
fan-out, the on-disk result cache, per-stage instrumentation, and the
fault-tolerance/observability layer.

This package is the scaling substrate every experiment and evaluation
helper builds on (see ``docs/engine.md``):

* :class:`ParallelMap` — order-preserving, fault-tolerant map over
  tasks with a serial or ``ProcessPoolExecutor`` backend, selected by
  ``jobs`` / the ``REPRO_JOBS`` environment variable; per-task timeout,
  bounded retry with exponential backoff, pool-crash recovery with a
  serial fallback, and optional :class:`MapCheckpoint` resumability;
* :func:`spawn_seeds` / :func:`spawn_rngs` — ``SeedSequence``-based
  fan-out, so serial and parallel runs draw identical random streams
  regardless of worker count;
* :class:`ResultCache` — content-addressed experiment-result cache
  keyed by (experiment id, params, code version) with hit/miss
  counters and a :meth:`~ResultCache.doctor` consistency scan;
* :class:`RunLedger` — structured JSONL event log (task lifecycle,
  retries, pool crashes, cache hits) with monotonic timestamps,
  installed ambiently via :func:`use_ledger`;
* :class:`Instrumentation` — per-stage wall-time and task-count
  records surfaced in every ``ExperimentResult`` report;
* :mod:`repro.engine.faults` — deterministic fault injection (raise /
  hang / kill) for testing every recovery path without flakiness.

Layering: ``engine`` depends only on numpy and ``repro.errors`` —
everything above it (fleet, evaluation, experiments, cli) may use it.
"""

from .cache import (
    ResultCache,
    cache_key,
    code_version,
    decode_payload,
    default_cache_dir,
    encode_payload,
)
from .instrument import Instrumentation, StageTiming
from .ledger import RunLedger, active_ledger, read_ledger, use_ledger
from .parallel import (
    MapCheckpoint,
    ParallelMap,
    ParallelTaskError,
    ParallelTimeoutError,
    get_default_jobs,
    parallel_map,
)
from .seeding import spawn_rngs, spawn_seeds

__all__ = [
    "MapCheckpoint",
    "ParallelMap",
    "ParallelTaskError",
    "ParallelTimeoutError",
    "parallel_map",
    "get_default_jobs",
    "spawn_seeds",
    "spawn_rngs",
    "ResultCache",
    "cache_key",
    "code_version",
    "decode_payload",
    "default_cache_dir",
    "encode_payload",
    "RunLedger",
    "active_ledger",
    "read_ledger",
    "use_ledger",
    "Instrumentation",
    "StageTiming",
]
