"""Order-preserving parallel map with selectable backends.

``ParallelMap`` is the single fan-out primitive of the repository: the
fleet generator, the fleet evaluator, the traffic sweeps, the
Monte-Carlo estimators and the region-grid experiments all express their
per-vehicle / per-grid-cell / per-repetition work as a function applied
to a task list and hand it here.

Backends
--------
``jobs == 1`` (the default)
    Plain in-process loop — zero overhead, natural exception
    propagation.
``jobs > 1``
    A ``concurrent.futures.ProcessPoolExecutor`` with ``jobs`` workers.
    Results always come back in task order, and a worker-side exception
    is re-raised in the parent with the original exception instance,
    chained to a :class:`ParallelTaskError` carrying the worker's
    formatted traceback.

Because results are ordered and all randomness is injected per-task via
:mod:`repro.engine.seeding`, a computation produces bit-identical output
for every ``jobs`` value — the property the determinism test suite
(``tests/test_engine_determinism.py``) pins.

The process backend pickles the task function, so it must be a
module-level callable or a ``functools.partial`` of one.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..errors import InvalidParameterError

__all__ = ["ParallelMap", "ParallelTaskError", "get_default_jobs", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV_VAR = "REPRO_JOBS"


class ParallelTaskError(Exception):
    """Carries the worker-side traceback of a failed parallel task.

    The original exception is re-raised in the parent process with this
    error attached as its ``__cause__``, so both the original type and
    the remote traceback text survive the process boundary.
    """

    def __init__(self, task_index: int, traceback_text: str) -> None:
        super().__init__(
            f"task {task_index} failed in a worker process; "
            f"worker traceback:\n{traceback_text}"
        )
        self.task_index = task_index
        self.traceback_text = traceback_text


def get_default_jobs() -> int:
    """The worker count used when ``jobs`` is not given: ``REPRO_JOBS``
    if set (and >= 1), else 1 (serial)."""
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None or not raw.strip():
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise InvalidParameterError(
            f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise InvalidParameterError(f"{JOBS_ENV_VAR} must be >= 1, got {jobs}")
    return jobs


def _guarded_call(payload: tuple[int, Callable, object]) -> tuple[bool, object, str | None]:
    """Worker-side wrapper: never raises, so the parent can re-raise the
    first failure *in task order* with its remote traceback attached."""
    index, fn, item = payload
    try:
        return (True, fn(item), None)
    except Exception as exc:  # noqa: BLE001 — re-raised in the parent
        return (False, exc, traceback.format_exc())


class ParallelMap:
    """Order-preserving map over a task list (see module docstring).

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` falls back to :func:`get_default_jobs`
        (the ``REPRO_JOBS`` environment variable, default 1). ``1`` runs
        serially in-process.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = get_default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise InvalidParameterError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def backend(self) -> str:
        """``"serial"`` or ``"process"``."""
        return "serial" if self.jobs == 1 else "process"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        The first failing task's exception propagates: directly (with
        its original traceback) on the serial backend, re-raised from a
        :class:`ParallelTaskError` on the process backend.
        """
        tasks = list(items)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        workers = min(self.jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        payloads = [(index, fn, item) for index, item in enumerate(tasks)]
        with ProcessPoolExecutor(max_workers=workers) as executor:
            outcomes = list(executor.map(_guarded_call, payloads, chunksize=chunksize))
        results: list[R] = []
        for index, (ok, value, traceback_text) in enumerate(outcomes):
            if not ok:
                raise value from ParallelTaskError(index, traceback_text)
            results.append(value)
        return results


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int | None = None
) -> list[R]:
    """Functional shorthand for ``ParallelMap(jobs).map(fn, items)``."""
    return ParallelMap(jobs).map(fn, items)
