"""Order-preserving, fault-tolerant parallel map.

``ParallelMap`` is the single fan-out primitive of the repository: the
fleet generator, the fleet evaluator, the traffic sweeps, the
Monte-Carlo estimators and the region-grid experiments all express their
per-vehicle / per-grid-cell / per-repetition work as a function applied
to a task list and hand it here.

Backends
--------
``jobs == 1`` (the default)
    Plain in-process loop — zero overhead, natural exception
    propagation.
``jobs > 1``
    A ``concurrent.futures.ProcessPoolExecutor`` with ``jobs`` workers
    and a sliding submission window of at most ``jobs`` in-flight tasks.
    Results always come back in task order, and a worker-side exception
    is re-raised in the parent with the original exception instance,
    chained to a :class:`ParallelTaskError` carrying the worker's
    formatted traceback.

Fault tolerance (see ``docs/engine.md`` — "Failure semantics")
--------------------------------------------------------------
* **Retry with exponential backoff** — a task attempt that raises is
  retried up to ``retries`` times (``REPRO_TASK_RETRIES``, default 0),
  sleeping ``backoff * 2**(failures-1)`` seconds between attempts.
* **Per-task timeout** — on the process backend, a task running longer
  than ``timeout`` seconds (``REPRO_TASK_TIMEOUT``, default none) counts
  as a failed attempt; the pool is torn down to reclaim the hung worker
  and every other in-flight task is re-dispatched (completed results
  are kept).  The serial backend cannot preempt, so ``timeout`` is a
  process-backend-only guarantee.
* **Pool-crash recovery** — a worker dying mid-run (OOM kill, SIGKILL,
  segfault) breaks the whole ``ProcessPoolExecutor``.  Completed task
  results are kept, surviving tasks are re-dispatched to a fresh pool,
  and after ``max_pool_failures`` crashes (``REPRO_MAX_POOL_FAILURES``,
  default 2) the map degrades gracefully to the serial backend instead
  of aborting.
* **Checkpointing** — pass a :class:`MapCheckpoint` to spill each
  completed task result through the on-disk :class:`ResultCache`,
  keyed by the task's content digest, so a re-run of the same map
  resumes from the completed prefix instead of restarting.
* **Ledger** — every lifecycle event (task start/finish/retry/timeout,
  pool crash, serial fallback, checkpoint hit) is emitted to the
  :class:`~repro.engine.ledger.RunLedger` given explicitly or installed
  via :func:`~repro.engine.ledger.use_ledger`.

Because results are ordered, all randomness is injected per-task via
:mod:`repro.engine.seeding`, and recovery only ever *re-runs* pure
tasks, a computation produces bit-identical output for every ``jobs``
value — with or without faults along the way — the property the
determinism suites (``tests/test_engine_determinism.py``,
``tests/test_engine_faults.py``) pin.

The process backend pickles the task function, so it must be a
module-level callable or a ``functools.partial`` of one.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from ..errors import InvalidParameterError, ReproError
from .cache import ResultCache, cache_key
from .ledger import RunLedger, active_ledger

__all__ = [
    "MapCheckpoint",
    "ParallelMap",
    "ParallelTaskError",
    "ParallelTimeoutError",
    "get_default_jobs",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variables consulted when the arguments are not given.
JOBS_ENV_VAR = "REPRO_JOBS"
TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"
RETRIES_ENV_VAR = "REPRO_TASK_RETRIES"
POOL_FAILURES_ENV_VAR = "REPRO_MAX_POOL_FAILURES"

#: Longest single backoff sleep, regardless of attempt count.
_BACKOFF_CAP_SECONDS = 30.0

#: Distinguishes "argument not given" from an explicit ``timeout=None``.
_UNSET = object()

#: Sentinel for a checkpoint miss (``None`` is a valid task result).
_CHECKPOINT_MISS = object()


class ParallelTaskError(Exception):
    """Carries the worker-side traceback of a failed parallel task.

    The original exception is re-raised in the parent process with this
    error attached as its ``__cause__``, so both the original type and
    the remote traceback text survive the process boundary.
    """

    def __init__(self, task_index: int, traceback_text: str) -> None:
        super().__init__(
            f"task {task_index} failed in a worker process; "
            f"worker traceback:\n{traceback_text}"
        )
        self.task_index = task_index
        self.traceback_text = traceback_text


class ParallelTimeoutError(ReproError, TimeoutError):
    """A task exceeded its per-attempt timeout on every allowed attempt."""

    def __init__(self, task_index: int, timeout: float, attempts: int) -> None:
        super().__init__(
            f"task {task_index} exceeded its {timeout:g} s timeout on "
            f"all {attempts} attempt(s)"
        )
        self.task_index = task_index
        self.timeout = timeout
        self.attempts = attempts


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def get_default_jobs() -> int:
    """The worker count used when ``jobs`` is not given: ``REPRO_JOBS``
    if set (and >= 1), else 1 (serial)."""
    return _env_int(JOBS_ENV_VAR, default=1, minimum=1)


def get_default_timeout() -> float | None:
    """Per-task timeout when not given: ``REPRO_TASK_TIMEOUT`` seconds
    if set, else no timeout."""
    raw = os.environ.get(TIMEOUT_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise InvalidParameterError(
            f"{TIMEOUT_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise InvalidParameterError(f"{TIMEOUT_ENV_VAR} must be > 0, got {value:g}")
    return value


def get_default_retries() -> int:
    """Retry budget when not given: ``REPRO_TASK_RETRIES``, default 0."""
    return _env_int(RETRIES_ENV_VAR, default=0, minimum=0)


def get_default_max_pool_failures() -> int:
    """Pool crashes tolerated before the serial fallback:
    ``REPRO_MAX_POOL_FAILURES``, default 2."""
    return _env_int(POOL_FAILURES_ENV_VAR, default=2, minimum=1)


def _guarded_call(payload: tuple[int, Callable, object]) -> tuple[bool, object, str | None]:
    """Worker-side wrapper: never raises, so the parent can attach the
    remote traceback and apply its retry policy."""
    index, fn, item = payload
    try:
        return (True, fn(item), None)
    except Exception as exc:  # noqa: BLE001 — re-raised in the parent
        return (False, exc, traceback.format_exc())


def _terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Best-effort hard teardown: never blocks on hung or dead workers."""
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 — a broken pool may refuse politely
        pass
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 — already dead
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=1.0)
        except Exception:  # noqa: BLE001
            pass


def _jsonable(value):
    """Unwrap numpy scalars/arrays so plain results JSON-encode exactly
    (``float(np.float64)`` is lossless); anything else passes through."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


@dataclass
class MapCheckpoint:
    """Spills completed task results through a :class:`ResultCache`.

    Each completed task is stored under
    ``cache_key("checkpoint:" + scope, {"index": i, "task": item})`` —
    the item itself is canonicalized into the key, so a checkpoint only
    ever resumes a map over *identical* tasks (and, because
    ``cache_key`` folds in the code version, identical code).  ``scope``
    must distinguish maps whose behaviour differs through closed-over
    state that is not part of the task items (e.g. sweep grid size).

    ``encode`` / ``decode`` convert a task result to and from a
    JSON-storable value; the default coding unwraps numpy scalars and
    arrays (``tolist``) and otherwise stores the value as-is, so results
    that JSON still cannot store are silently not checkpointed (the map
    returns them regardless — checkpointing is best-effort by design).

    Keys are snapshotted at :meth:`load` time: a worker that mutates its
    task in place (e.g. ``SeedSequence.spawn`` bumping
    ``n_children_spawned``, which changes the repr) must not shift the
    key the result is later stored under, or a re-run — whose pristine
    items hash like the originals — would never see the spill.
    """

    cache: ResultCache
    scope: str
    encode: Callable[[object], object] | None = None
    decode: Callable[[object], object] | None = None

    def __post_init__(self) -> None:
        self._keys: dict[int, tuple[int, str]] = {}

    def _key(self, index: int, item) -> str:
        memo = self._keys.get(index)
        if memo is not None and memo[0] == id(item):
            return memo[1]
        key = cache_key(f"checkpoint:{self.scope}", {"index": index, "task": item})
        self._keys[index] = (id(item), key)
        return key

    def load(self, index: int, item):
        payload = self.cache.get(self._key(index, item))
        if payload is None or "value" not in payload:
            return _CHECKPOINT_MISS
        value = payload["value"]
        return self.decode(value) if self.decode is not None else value

    def store(self, index: int, item, value) -> None:
        encoded = self.encode(value) if self.encode is not None else _jsonable(value)
        try:
            self.cache.put(self._key(index, item), {"value": encoded})
        except (TypeError, ValueError):
            pass  # un-JSON-able result: skip the spill, keep the result


class ParallelMap:
    """Order-preserving, fault-tolerant map over a task list.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` falls back to :func:`get_default_jobs`
        (the ``REPRO_JOBS`` environment variable, default 1). ``1`` runs
        serially in-process.
    timeout:
        Per-task-attempt wall-time limit in seconds (process backend
        only); default :func:`get_default_timeout`, ``None`` disables.
    retries:
        Failed attempts tolerated per task beyond the first; default
        :func:`get_default_retries` (0 — fail fast, the historical
        behaviour).
    backoff:
        Base of the exponential retry delay (seconds); attempt ``k``
        sleeps ``backoff * 2**(k-1)``, capped at 30 s.
    max_pool_failures:
        Pool crashes tolerated before degrading to the serial backend;
        default :func:`get_default_max_pool_failures`.
    ledger:
        Explicit :class:`RunLedger`; ``None`` uses the ambient ledger
        installed via :func:`~repro.engine.ledger.use_ledger`, if any.
    label:
        Human-readable tag recorded in the ledger's ``map-start`` event.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        retries: int | None = None,
        backoff: float = 0.25,
        max_pool_failures: int | None = None,
        ledger: RunLedger | None = None,
        label: str | None = None,
    ) -> None:
        self.jobs = get_default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise InvalidParameterError(f"jobs must be >= 1, got {self.jobs}")
        if timeout is _UNSET:
            self.timeout = get_default_timeout()
        else:
            self.timeout = None if timeout is None else float(timeout)
        if self.timeout is not None and self.timeout <= 0:
            raise InvalidParameterError(f"timeout must be > 0, got {self.timeout:g}")
        self.retries = get_default_retries() if retries is None else int(retries)
        if self.retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {self.retries}")
        self.backoff = float(backoff)
        if self.backoff < 0:
            raise InvalidParameterError(f"backoff must be >= 0, got {self.backoff:g}")
        self.max_pool_failures = (
            get_default_max_pool_failures()
            if max_pool_failures is None
            else int(max_pool_failures)
        )
        if self.max_pool_failures < 1:
            raise InvalidParameterError(
                f"max_pool_failures must be >= 1, got {self.max_pool_failures}"
            )
        self.ledger = ledger
        self.label = label

    @property
    def backend(self) -> str:
        """``"serial"`` or ``"process"``."""
        return "serial" if self.jobs == 1 else "process"

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        checkpoint: MapCheckpoint | None = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        A task whose attempts are exhausted propagates its exception:
        directly (with its original traceback) on the serial backend,
        re-raised from a :class:`ParallelTaskError` on the process
        backend; a hung task raises :class:`ParallelTimeoutError`.
        """
        tasks = list(items)
        ledger = self.ledger if self.ledger is not None else active_ledger()
        results: dict[int, R] = {}
        pending: list[int] = []
        for index, item in enumerate(tasks):
            if checkpoint is not None:
                value = checkpoint.load(index, item)
                if value is not _CHECKPOINT_MISS:
                    results[index] = value
                    self._emit(ledger, "checkpoint-hit", task=index)
                    continue
            pending.append(index)
        self._emit(
            ledger,
            "map-start",
            backend=self.backend,
            label=self.label,
            jobs=self.jobs,
            tasks=len(tasks),
            restored=len(results),
        )
        if pending:
            if self.jobs == 1 or len(pending) <= 1:
                self._run_serial(fn, tasks, pending, results, {}, ledger, checkpoint)
            else:
                self._run_process(fn, tasks, pending, results, ledger, checkpoint)
        self._emit(ledger, "map-finish", label=self.label, tasks=len(tasks))
        return [results[index] for index in range(len(tasks))]

    # ------------------------------------------------------------------
    # shared helpers

    @staticmethod
    def _emit(ledger: RunLedger | None, event: str, **fields) -> None:
        if ledger is not None:
            ledger.emit(event, **fields)

    def _backoff_delay(self, failures: int) -> float:
        return min(self.backoff * (2.0 ** (failures - 1)), _BACKOFF_CAP_SECONDS)

    def _record(self, index, item, value, results, ledger, checkpoint) -> None:
        results[index] = value
        if checkpoint is not None:
            checkpoint.store(index, item, value)
        self._emit(ledger, "task-finish", task=index)

    # ------------------------------------------------------------------
    # serial backend (also the degraded mode after repeated pool crashes)

    def _run_serial(
        self, fn, tasks, pending, results, attempts, ledger, checkpoint
    ) -> None:
        for index in pending:
            while True:
                self._emit(
                    ledger,
                    "task-start",
                    task=index,
                    attempt=attempts.get(index, 0) + 1,
                    backend="serial",
                )
                try:
                    value = fn(tasks[index])
                except Exception as exc:
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] > self.retries:
                        raise
                    self._emit(
                        ledger,
                        "task-retry",
                        task=index,
                        attempt=attempts[index],
                        error=repr(exc),
                    )
                    delay = self._backoff_delay(attempts[index])
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._record(index, tasks[index], value, results, ledger, checkpoint)
                break

    # ------------------------------------------------------------------
    # process backend

    def _run_process(self, fn, tasks, pending, results, ledger, checkpoint) -> None:
        queue = list(pending)
        attempts: dict[int, int] = {}
        not_before: dict[int, float] = {}
        pool_failures = 0
        while queue:
            if pool_failures >= self.max_pool_failures:
                self._emit(
                    ledger,
                    "serial-fallback",
                    remaining=len(queue),
                    pool_failures=pool_failures,
                )
                self._run_serial(
                    fn, tasks, sorted(queue), results, attempts, ledger, checkpoint
                )
                return
            workers = min(self.jobs, len(queue))
            executor = ProcessPoolExecutor(max_workers=workers)
            try:
                queue, crashed = self._drain_pool(
                    executor,
                    workers,
                    fn,
                    tasks,
                    queue,
                    results,
                    attempts,
                    not_before,
                    ledger,
                    checkpoint,
                )
            finally:
                _terminate_pool(executor)
            if crashed:
                pool_failures += 1
                self._emit(
                    ledger,
                    "pool-crash",
                    failures=pool_failures,
                    remaining=len(queue),
                )

    def _drain_pool(
        self,
        executor,
        workers,
        fn,
        tasks,
        queue,
        results,
        attempts,
        not_before,
        ledger,
        checkpoint,
    ) -> tuple[list[int], bool]:
        """Run tasks on one pool until it is empty, crashes, or a hung
        task forces a restart.  Returns ``(unfinished tasks, crashed)``.
        """
        queue = list(queue)
        inflight: dict[object, int] = {}
        deadlines: dict[object, float] = {}

        def recovered() -> list[int]:
            return sorted(set(queue) | set(inflight.values()))

        while queue or inflight:
            # Refill the submission window with whatever is off backoff.
            now = time.monotonic()
            while queue and len(inflight) < workers:
                position = next(
                    (
                        pos
                        for pos, index in enumerate(queue)
                        if not_before.get(index, 0.0) <= now
                    ),
                    None,
                )
                if position is None:
                    break
                index = queue.pop(position)
                try:
                    future = executor.submit(_guarded_call, (index, fn, tasks[index]))
                except BrokenExecutor:
                    queue.append(index)
                    return recovered(), True
                inflight[future] = index
                if self.timeout is not None:
                    deadlines[future] = time.monotonic() + self.timeout
                self._emit(
                    ledger,
                    "task-start",
                    task=index,
                    attempt=attempts.get(index, 0) + 1,
                    backend="process",
                )
            if not inflight:
                # Everything left is waiting out its backoff delay.
                next_ready = min(not_before.get(index, 0.0) for index in queue)
                time.sleep(max(0.0, next_ready - time.monotonic()))
                continue
            done, _ = wait(
                set(inflight),
                timeout=self._wait_timeout(queue, not_before, deadlines),
                return_when=FIRST_COMPLETED,
            )
            crashed = False
            for future in sorted(done, key=inflight.__getitem__):
                index = inflight.pop(future)
                deadlines.pop(future, None)
                error = future.exception()
                if error is not None:
                    if isinstance(error, BrokenExecutor):
                        crashed = True
                        queue.append(index)
                        continue
                    # Executor-side task failure (e.g. unpicklable
                    # result): apply the normal retry policy.
                    self._register_failure(
                        index,
                        error,
                        "".join(
                            traceback.format_exception(
                                type(error), error, error.__traceback__
                            )
                        ),
                        attempts,
                        not_before,
                        queue,
                        ledger,
                    )
                    continue
                ok, value, traceback_text = future.result()
                if ok:
                    self._record(index, tasks[index], value, results, ledger, checkpoint)
                else:
                    self._register_failure(
                        index, value, traceback_text, attempts, not_before, queue, ledger
                    )
            if crashed:
                return recovered(), True
            if deadlines:
                expired = sorted(
                    inflight[future]
                    for future, deadline in list(deadlines.items())
                    if future in inflight and deadline <= time.monotonic()
                )
                if expired:
                    # A hung worker cannot be preempted through the
                    # executor API: count the timeout against each hung
                    # task, then restart the pool to reclaim the workers
                    # (the caller terminates it; completed results stay).
                    for index in expired:
                        attempts[index] = attempts.get(index, 0) + 1
                        if attempts[index] > self.retries:
                            raise ParallelTimeoutError(
                                index, self.timeout, attempts[index]
                            )
                        self._emit(
                            ledger,
                            "task-timeout",
                            task=index,
                            attempt=attempts[index],
                            timeout=self.timeout,
                        )
                        not_before[index] = (
                            time.monotonic() + self._backoff_delay(attempts[index])
                        )
                    return recovered(), False
        return [], False

    def _register_failure(
        self, index, exc, traceback_text, attempts, not_before, queue, ledger
    ) -> None:
        """Count one failed attempt; re-queue or raise."""
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] > self.retries:
            raise exc from ParallelTaskError(index, traceback_text or "")
        self._emit(
            ledger, "task-retry", task=index, attempt=attempts[index], error=repr(exc)
        )
        not_before[index] = time.monotonic() + self._backoff_delay(attempts[index])
        queue.append(index)

    def _wait_timeout(self, queue, not_before, deadlines) -> float | None:
        """How long ``wait`` may block before backoffs/deadlines need a
        look; ``None`` (forever) when neither is in play."""
        now = time.monotonic()
        candidates = []
        if deadlines:
            candidates.append(min(deadlines.values()) - now)
        waiting = [not_before[index] for index in queue if index in not_before]
        if waiting:
            candidates.append(min(waiting) - now)
        if not candidates:
            return None
        return max(0.0, min(candidates)) + 0.01


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int | None = None
) -> list[R]:
    """Functional shorthand for ``ParallelMap(jobs).map(fn, items)``."""
    return ParallelMap(jobs).map(fn, items)
