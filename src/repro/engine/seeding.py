"""Deterministic seed fan-out for parallel computations.

The rule that makes parallel runs bit-identical to serial ones: **never
share one random stream across tasks**.  Instead, the parent derives one
independent child seed per task with ``numpy``'s ``SeedSequence.spawn``
(or ``Generator.spawn`` for an existing generator) *before* dispatching,
and each task builds its own :class:`numpy.random.Generator` from its
child.  Task ``i`` then sees the same stream no matter which worker runs
it, in what order, or how many workers exist.

``SeedSequence.spawn`` children are guaranteed non-overlapping: each
child extends the parent's entropy with a unique ``spawn_key``, so no
two children (at any depth of nesting) ever collide — the property the
hypothesis suite (``tests/test_engine_properties.py``) checks.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["spawn_seeds", "spawn_rngs"]


def spawn_seeds(
    seed: int | np.random.SeedSequence, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child ``SeedSequence``s of a root seed.

    Accepts a plain integer (hashed into a fresh root sequence) or an
    existing ``SeedSequence`` (spawned in place, advancing its
    ``n_children_spawned`` counter).
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(int(seed))
    return root.spawn(count)


def spawn_rngs(
    seed: int | np.random.SeedSequence | np.random.Generator, count: int
) -> list[np.random.Generator]:
    """``count`` independent generators fanned out from a root seed.

    A ``Generator`` root is spawned directly (deterministic in the
    generator's spawn counter); anything else goes through
    :func:`spawn_seeds`.
    """
    if isinstance(seed, np.random.Generator):
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return list(seed.spawn(count))
    return [np.random.default_rng(child) for child in spawn_seeds(seed, count)]
