"""On-disk content-addressed result cache.

Repeated invocations of the same experiment with the same parameters
and the same code are pure recomputation; this cache makes them free.

Layout and keying (see ``docs/engine.md`` for the full contract):

* root directory — ``$REPRO_CACHE_DIR`` if set, else
  ``$XDG_CACHE_HOME/repro-idling``, else ``~/.cache/repro-idling``;
* one entry per key at ``<root>/<key[:2]>/<key>.json`` — the canonical
  JSON payload of an ``ExperimentResult``;
* the key is ``sha256({experiment, params, code})`` where ``code`` is
  :func:`code_version`, a digest over every ``repro`` source file — so
  **any** source edit invalidates every entry, and parameter values
  (not their dict order) address the result.

Canonicalization is injective where it matters: dict keys are tagged
with their original type (``{1: "a"}`` and ``{"1": "a"}`` must not
share a key), and non-finite floats are rewritten to a tagged marker
(``{"$nonfinite": "nan"}``) so every key and every stored payload is
strict JSON — ``allow_nan=False`` end to end, no ``NaN`` token ever on
disk.  :func:`decode_payload` restores the markers on read, so payloads
containing NaN/±inf round-trip losslessly (the marker dict itself is
reserved and must not appear as a literal payload value).

Writes are atomic (write-to-temp + rename), so a crashed or concurrent
run never leaves a torn entry — but a *killed* writer can orphan its
temp file; ``clear()`` sweeps those and :meth:`ResultCache.doctor`
reports them.  ``hits`` / ``misses`` counters expose cache
effectiveness to tests and the CLI without wall-clock flakiness.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path

from ..errors import InvalidParameterError

__all__ = [
    "ResultCache",
    "cache_key",
    "code_version",
    "decode_payload",
    "default_cache_dir",
    "encode_payload",
]

_CODE_VERSION: str | None = None

#: Reserved marker key for canonicalized non-finite floats.
_NONFINITE_KEY = "$nonfinite"
_NONFINITE_VALUES = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}


def default_cache_dir() -> Path:
    """Resolve the cache root (environment-sensitive, evaluated lazily)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-idling"


def code_version() -> str:
    """Digest of every ``repro`` source file (memoized per process).

    Hashing file *contents* (not mtimes or the package version string)
    makes the cache content-addressed on the code itself: editing any
    module yields a new version and therefore fresh keys.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _nonfinite_token(value: float) -> str:
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _tag_key(key) -> str:
    """JSON object key carrying the original Python key type.

    Bare ``str(key)`` coercion collides (``{1: "a"}`` vs ``{"1": "a"}``);
    the type prefix keeps distinct params on distinct cache keys.
    """
    if isinstance(key, bool):  # before int: bool is an int subclass
        return f"bool:{key}"
    if isinstance(key, int):
        return f"int:{key}"
    if isinstance(key, float):
        return f"float:{key!r}"
    if isinstance(key, str):
        return f"str:{key}"
    return f"repr:{key!r}"


def _canonical(value):
    """Reduce a parameter value to a strict-JSON-stable form."""
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {_tag_key(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, float) and not math.isfinite(value):
        return {_NONFINITE_KEY: _nonfinite_token(value)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy scalars and arrays
        return _canonical(value.tolist())
    return repr(value)


def cache_key(experiment_id: str, params: dict, version: str | None = None) -> str:
    """Content address of one experiment invocation."""
    if not experiment_id:
        raise InvalidParameterError("experiment_id must be non-empty")
    canonical = json.dumps(
        {
            "experiment": experiment_id,
            "params": _canonical(dict(params)),
            "code": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _strip_nonfinite(value):
    """Replace non-finite floats with their reserved marker dict."""
    if isinstance(value, dict):
        return {key: _strip_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strip_nonfinite(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return {_NONFINITE_KEY: _nonfinite_token(value)}
    return value


def _restore_nonfinite(value):
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY} and value[_NONFINITE_KEY] in _NONFINITE_VALUES:
            return _NONFINITE_VALUES[value[_NONFINITE_KEY]]
        return {key: _restore_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_nonfinite(item) for item in value]
    return value


def encode_payload(payload: dict) -> bytes:
    """Canonical strict-JSON byte encoding of a result payload.

    Non-finite floats become marker dicts (restored by
    :func:`decode_payload`); ``allow_nan=False`` guarantees no ``NaN`` /
    ``Infinity`` token can reach the store.
    """
    return json.dumps(
        _strip_nonfinite(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode()


def decode_payload(data: bytes) -> dict:
    """Inverse of :func:`encode_payload` (raises ``ValueError`` on
    malformed JSON)."""
    return _restore_nonfinite(json.loads(data))


def _reject_constant(token: str):
    raise ValueError(f"non-standard JSON constant {token!r}")


class ResultCache:
    """Filesystem-backed result store with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory; ``None`` resolves :func:`default_cache_dir` at
        construction time (so tests can redirect via ``REPRO_CACHE_DIR``).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_bytes(self, key: str) -> bytes | None:
        """Raw stored payload, or None on a miss; counts the access."""
        try:
            data = self.entry_path(key).read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def get(self, key: str) -> dict | None:
        """Stored payload decoded from JSON, or None on a miss.

        A corrupt entry (truncated by hand, never by us — writes are
        atomic) counts as a miss and is dropped.
        """
        data = self.get_bytes(key)
        if data is None:
            return None
        try:
            return decode_payload(data)
        except ValueError:
            self.hits -= 1
            self.misses += 1
            self.entry_path(key).unlink(missing_ok=True)
            return None

    def put(self, key: str, payload: dict) -> bytes:
        """Store a payload atomically; returns the canonical bytes."""
        data = encode_payload(payload)
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + f".tmp{os.getpid()}")
        temp.write_bytes(data)
        temp.replace(path)
        return data

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def orphan_tmp_files(self) -> list[Path]:
        """Temp files left behind by writers killed mid-``put``.

        Invisible to :meth:`entries` (they never count as results) but
        they do consume disk, so ``clear()`` sweeps them and the CLI
        ``cache`` subcommand reports them.
        """
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json.tmp*"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Remove every entry and orphaned temp file; returns how many
        files were removed."""
        removed = 0
        for path in self.entries() + self.orphan_tmp_files():
            path.unlink(missing_ok=True)
            removed += 1
        for bucket in self.root.glob("*"):
            if bucket.is_dir():
                try:
                    bucket.rmdir()
                except OSError:
                    pass  # non-empty (foreign files) — leave it
        return removed

    def doctor(self) -> dict[str, list[Path]]:
        """Consistency scan: ``{"orphans": [...], "invalid": [...]}``.

        ``orphans`` are crashed writers' temp files; ``invalid`` are
        entries that are not *strict* JSON (malformed, or containing
        ``NaN`` / ``Infinity`` tokens written by pre-fix code).
        """
        invalid = []
        for path in self.entries():
            try:
                json.loads(path.read_bytes(), parse_constant=_reject_constant)
            except ValueError:
                invalid.append(path)
        return {"orphans": self.orphan_tmp_files(), "invalid": invalid}
