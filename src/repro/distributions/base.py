"""Stop-length distribution interface.

Every evaluation in the paper reduces to integrals of costs against a
stop-length distribution ``q(y)`` on ``[0, ∞)``.  The library's analysis
layer (:mod:`repro.core.analysis`) talks to distributions exclusively
through this interface:

``pdf(y)`` / ``cdf(y)`` / ``survival(y)``
    the usual densities and tail probabilities;
``mean()``
    the first moment ``mu`` (used by MOM-Rand);
``partial_expectation(b)``
    ``∫₀ᵇ y q(y) dy`` — gives ``mu_B_minus`` at ``b = B`` (Eq. 10);
``sample(n, rng)``
    draw stop lengths (used by the Monte-Carlo and fleet layers).

Defaults are provided for everything except ``pdf``/``cdf`` and
``sample``: subclasses with closed forms should override for speed, but a
minimal subclass is fully functional.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
from scipy import integrate

from ..errors import InvalidDistributionError

__all__ = ["StopLengthDistribution"]


class StopLengthDistribution(ABC):
    """A probability distribution of vehicle stop lengths (seconds)."""

    #: Human-readable label used in reports.
    name: str = "stop-length distribution"

    @abstractmethod
    def cdf(self, stop_length: float) -> float:
        """``P{y <= stop_length}``."""

    @abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent stop lengths."""

    def pdf(self, stop_length: float) -> float:
        """Probability density at ``stop_length``.

        Discrete distributions raise :class:`InvalidDistributionError`;
        continuous subclasses must override.
        """
        raise InvalidDistributionError(
            f"{type(self).__name__} does not expose a density"
        )

    def survival(self, stop_length: float) -> float:
        """``P{y >= stop_length}``.

        For continuous distributions this equals ``1 - cdf``; discrete
        distributions override to include the atom at ``stop_length``
        itself (the paper's long-stop convention is the closed event
        ``y >= B``).
        """
        return 1.0 - self.cdf(stop_length)

    def partial_expectation(self, upper: float) -> float:
        """``∫₀ᵘ y q(y) dy`` — expectation restricted to short stops.

        The default integrates ``y * pdf(y)`` with adaptive quadrature.
        """
        if upper <= 0.0:
            return 0.0
        value, _ = integrate.quad(lambda y: y * self.pdf(y), 0.0, upper, limit=200)
        return value

    def mean(self) -> float:
        """First moment ``E[y]``.

        Default: ``∫₀^∞ survival(y) dy`` by quadrature — robust for
        heavy-tailed distributions with finite mean.
        """
        value, _ = integrate.quad(self.survival, 0.0, np.inf, limit=200)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
