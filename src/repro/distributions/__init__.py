"""Stop-length distribution toolkit.

Everything the evaluation layers integrate against: analytic parametric
families, finite mixtures, empirical samples, adversarial discrete
constructions, mean-scaling (Figures 5-6) and goodness-of-fit diagnostics
(Figure 3).
"""

from .base import StopLengthDistribution
from .censored import CensoredDistribution
from .discrete import DiscreteStopDistribution, three_point, two_point
from .empirical import EmpiricalDistribution
from .fitting import KSResult, ks_test_exponential, moment_summary, tail_weight
from .mixture import MixtureDistribution
from .parametric import Exponential, LogNormal, Pareto, ScipyDistribution, Uniform, Weibull
from .scaled import ScaledDistribution, scale_to_mean

__all__ = [
    "StopLengthDistribution",
    "CensoredDistribution",
    "DiscreteStopDistribution",
    "two_point",
    "three_point",
    "EmpiricalDistribution",
    "MixtureDistribution",
    "Exponential",
    "Uniform",
    "LogNormal",
    "Weibull",
    "Pareto",
    "ScipyDistribution",
    "ScaledDistribution",
    "scale_to_mean",
    "KSResult",
    "ks_test_exponential",
    "tail_weight",
    "moment_summary",
]
