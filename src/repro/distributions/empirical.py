"""Empirical stop-length distributions built from observed samples.

This is how real (or synthesized) driving records enter the analysis: each
vehicle's week of stops becomes an :class:`EmpiricalDistribution`, whose
``partial_expectation(B)`` / ``survival(B)`` are exactly the paper's
``mu_B_minus`` / ``q_B_plus`` sample estimates.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidDistributionError, InvalidParameterError
from .base import StopLengthDistribution

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(StopLengthDistribution):
    """The empirical distribution of a sample of stop lengths.

    ``cdf``/``survival``/moments are the exact sample quantities;
    ``sample`` draws with replacement (bootstrap).
    """

    def __init__(
        self, stop_lengths, name: str = "empirical", policy=None, report=None
    ) -> None:
        y = np.asarray(stop_lengths, dtype=float).ravel()
        if policy is not None:
            from ..validation import clean_stop_lengths

            y = clean_stop_lengths(y, policy, report, source=f"empirical:{name}")
        if y.size == 0:
            raise InvalidDistributionError("empirical distribution needs at least one stop")
        if np.any(~np.isfinite(y)) or np.any(y < 0.0):
            raise InvalidDistributionError("stop lengths must be non-negative and finite")
        self.stop_lengths = np.sort(y)
        self.name = name
        self._prefix_sample = None

    @property
    def count(self) -> int:
        """Number of observed stops."""
        return int(self.stop_lengths.size)

    @property
    def prefix_sample(self):
        """The sample as a cached
        :class:`~repro.core.kernels.PrefixSumSample` (values already
        sorted, so construction skips the sort)."""
        if self._prefix_sample is None:
            from ..core.kernels import PrefixSumSample

            self._prefix_sample = PrefixSumSample(self.stop_lengths, presorted=True)
        return self._prefix_sample

    def cdf(self, stop_length: float) -> float:
        return float(
            np.searchsorted(self.stop_lengths, stop_length, side="right")
            / self.stop_lengths.size
        )

    def survival(self, stop_length: float) -> float:
        # Closed event y >= stop_length, matching the paper's q_B_plus.
        idx = np.searchsorted(self.stop_lengths, stop_length, side="left")
        return float((self.stop_lengths.size - idx) / self.stop_lengths.size)

    def partial_expectation(self, upper: float) -> float:
        idx = np.searchsorted(self.stop_lengths, upper, side="left")
        return float(self.stop_lengths[:idx].sum() / self.stop_lengths.size)

    def mean(self) -> float:
        return float(self.stop_lengths.mean())

    def quantile(self, q: float) -> float:
        """Sample quantile (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {q!r}")
        return float(np.quantile(self.stop_lengths, q))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return rng.choice(self.stop_lengths, size=count, replace=True)

    def histogram(self, bin_edges) -> np.ndarray:
        """Probability mass per bin (Figure 3's plotted quantity)."""
        edges = np.asarray(bin_edges, dtype=float)
        counts, _ = np.histogram(self.stop_lengths, bins=edges)
        return counts / self.stop_lengths.size
