"""Distribution diagnostics: exponentiality tests and tail statistics.

Figure 3's caption makes a statistical claim — the observed stop-length
distributions "are different from the exponential distribution (as assumed
in [10]) according to the Kolmogorov-Smirnov test, mostly due to their
heavy tails".  This module reproduces that analysis for any stop sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..errors import InvalidParameterError

__all__ = ["KSResult", "ks_test_exponential", "tail_weight", "moment_summary"]


def _clean(stop_lengths, policy, report, source: str) -> np.ndarray:
    """Optionally route a sample through the validation layer.

    ``policy=None`` preserves the historical contract (the checks below
    raise :class:`InvalidParameterError` on dirty data); a policy routes
    non-finite/negative values through
    :func:`repro.validation.clean_stop_lengths` first, so diagnostics can
    run directly on quarantine-grade telemetry.
    """
    y = np.asarray(stop_lengths, dtype=float).ravel()
    if policy is None:
        return y
    from ..validation import clean_stop_lengths

    return clean_stop_lengths(y, policy, report, source=source)


@dataclass(frozen=True)
class KSResult:
    """Result of a Kolmogorov-Smirnov goodness-of-fit test."""

    statistic: float
    p_value: float
    rejected: bool
    alpha: float


def ks_test_exponential(
    stop_lengths, alpha: float = 0.05, policy=None, report=None
) -> KSResult:
    """KS test of a stop sample against the exponential with matched mean.

    Note: fitting the rate from the same sample makes the plain KS p-value
    conservative only asymptotically (the Lilliefors caveat); the paper
    simply reports rejection, which heavy-tailed samples of NREL size
    produce overwhelmingly, so the plain test suffices here.
    """
    y = _clean(stop_lengths, policy, report, "ks-test")
    if y.size < 8:
        raise InvalidParameterError("need at least 8 stops for a meaningful KS test")
    if np.any(~np.isfinite(y)) or np.any(y < 0.0):
        raise InvalidParameterError("stop lengths must be non-negative and finite")
    if not 0.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must lie in (0, 1), got {alpha!r}")
    mean = float(y.mean())
    if mean <= 0.0:
        raise InvalidParameterError("sample mean must be positive to fit an exponential")
    statistic, p_value = sps.kstest(y, "expon", args=(0.0, mean))
    return KSResult(
        statistic=float(statistic),
        p_value=float(p_value),
        rejected=bool(p_value < alpha),
        alpha=alpha,
    )


def tail_weight(
    stop_lengths, quantile: float = 0.95, policy=None, report=None
) -> float:
    """Ratio of the tail conditional mean to the overall mean.

    ``E[y | y > Q(quantile)] / E[y]`` — equals ``(1 + ln 20) ≈ 4.0``-ish for
    an exponential at the default 0.95 quantile; substantially larger for
    heavy-tailed samples.  A cheap, robust heavy-tail indicator.
    """
    y = _clean(stop_lengths, policy, report, "tail-weight")
    if y.size < 20:
        raise InvalidParameterError("need at least 20 stops to estimate tail weight")
    if not 0.0 < quantile < 1.0:
        raise InvalidParameterError(f"quantile must lie in (0, 1), got {quantile!r}")
    cutoff = np.quantile(y, quantile)
    tail = y[y > cutoff]
    if tail.size == 0 or y.mean() <= 0.0:
        return 1.0
    return float(tail.mean() / y.mean())


def moment_summary(stop_lengths, policy=None, report=None) -> dict:
    """Mean, standard deviation, skewness and excess kurtosis of a sample."""
    y = _clean(stop_lengths, policy, report, "moment-summary")
    if y.size < 2:
        raise InvalidParameterError("need at least 2 stops for a moment summary")
    return {
        "count": int(y.size),
        "mean": float(y.mean()),
        "std": float(y.std(ddof=1)),
        "skewness": float(sps.skew(y)),
        "excess_kurtosis": float(sps.kurtosis(y)),
        "median": float(np.median(y)),
        "max": float(y.max()),
    }
