"""Discrete stop-length distributions.

These are the adversary's weapons: every worst-case construction in the
paper (Appendix A, the b-DET analysis of Section 4.4) concentrates mass on
a handful of stop lengths.  :class:`DiscreteStopDistribution` is the
general finite-support distribution; :func:`two_point` and
:func:`three_point` are the named constructions.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidDistributionError, InvalidParameterError
from .base import StopLengthDistribution

__all__ = ["DiscreteStopDistribution", "two_point", "three_point"]


class DiscreteStopDistribution(StopLengthDistribution):
    """A finite-support distribution over stop lengths.

    Parameters
    ----------
    values:
        Distinct non-negative stop lengths.
    probabilities:
        Matching probabilities; must sum to 1 (within tolerance).
    """

    def __init__(self, values, probabilities, name: str = "discrete") -> None:
        v = np.asarray(values, dtype=float)
        p = np.asarray(probabilities, dtype=float)
        if v.ndim != 1 or p.shape != v.shape or v.size == 0:
            raise InvalidDistributionError(
                "values and probabilities must be matching non-empty 1-D arrays"
            )
        if np.any(~np.isfinite(v)) or np.any(v < 0.0):
            raise InvalidDistributionError("stop lengths must be non-negative and finite")
        if np.any(p < -1e-12):
            raise InvalidDistributionError("probabilities must be non-negative")
        total = float(p.sum())
        if abs(total - 1.0) > 1e-9:
            raise InvalidDistributionError(f"probabilities sum to {total}, expected 1")
        order = np.argsort(v)
        v, p = v[order], np.clip(p[order], 0.0, None)
        if np.any(np.diff(v) == 0.0):
            raise InvalidDistributionError("stop-length values must be distinct")
        self.values = v
        self.probabilities = p / p.sum()
        self.name = name

    def cdf(self, stop_length: float) -> float:
        # Clamp: partial float sums can overshoot 1 by an ulp.
        return min(1.0, float(self.probabilities[self.values <= stop_length].sum()))

    def survival(self, stop_length: float) -> float:
        # Closed event: includes the atom at exactly ``stop_length``,
        # matching the paper's long-stop convention ``y >= B``.
        return min(1.0, float(self.probabilities[self.values >= stop_length].sum()))

    def partial_expectation(self, upper: float) -> float:
        mask = self.values < upper
        return float((self.values[mask] * self.probabilities[mask]).sum())

    def mean(self) -> float:
        return float((self.values * self.probabilities).sum())

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return rng.choice(self.values, size=count, p=self.probabilities)


def two_point(
    short_length: float,
    long_length: float,
    long_probability: float,
) -> DiscreteStopDistribution:
    """The two-point adversary: a short stop of ``short_length`` with
    probability ``1 - long_probability`` and a long stop of
    ``long_length`` with probability ``long_probability``.

    Used in Section 4.4 to show b-DET must pick ``b`` above the
    conditional short-stop mean.
    """
    q = float(long_probability)
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"long_probability must lie in [0, 1], got {q!r}")
    if not 0.0 <= float(short_length) < float(long_length):
        raise InvalidParameterError(
            "need 0 <= short_length < long_length, got "
            f"{short_length!r} and {long_length!r}"
        )
    if q == 0.0:
        return DiscreteStopDistribution([short_length], [1.0], name="two-point")
    if q == 1.0:
        return DiscreteStopDistribution([long_length], [1.0], name="two-point")
    return DiscreteStopDistribution(
        [short_length, long_length], [1.0 - q, q], name="two-point"
    )


def three_point(
    mid_length: float,
    mid_probability: float,
    long_length: float,
    long_probability: float,
) -> DiscreteStopDistribution:
    """The three-point adversary 0 / mid / long.

    The worst case against b-DET (Section 4.4) puts all short-stop mass at
    either 0 or exactly ``b``: stops at ``b`` pay the full ``b + B`` while
    contributing the least possible probability for the given
    ``mu_B_minus``.
    """
    pm, pl = float(mid_probability), float(long_probability)
    if pm < 0.0 or pl < 0.0 or pm + pl > 1.0 + 1e-12:
        raise InvalidParameterError(
            f"probabilities must be non-negative with sum <= 1, got {pm!r}, {pl!r}"
        )
    if not 0.0 < float(mid_length) < float(long_length):
        raise InvalidParameterError(
            "need 0 < mid_length < long_length, got "
            f"{mid_length!r} and {long_length!r}"
        )
    p0 = max(0.0, 1.0 - pm - pl)
    values, probs = [], []
    for v, p in ((0.0, p0), (float(mid_length), pm), (float(long_length), pl)):
        if p > 0.0:
            values.append(v)
            probs.append(p)
    return DiscreteStopDistribution(values, probs, name="three-point")
