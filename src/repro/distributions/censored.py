"""Right-censored stop-length observations.

Real driving records *censor* stop lengths: a stop cut short by the end
of the recording window (or by ignition-off detection) is observed at
its truncated value.  Censoring biases the constrained statistics in a
structured way:

* ``q_B_plus`` is **unaffected** as long as the censoring point ``c``
  is at least ``B`` — a stop censored at ``c >= B`` is still correctly
  classified as long;
* ``mu_B_minus`` is unaffected for the same reason (only sub-``B``
  lengths enter it, and those are below the censoring point);
* the full mean (MOM-Rand's input!) is biased **down**, potentially
  flipping MOM-Rand into its revised regime incorrectly.

That asymmetry is itself an argument for the paper's statistics over the
first moment.  :class:`CensoredDistribution` models the observation
process so the effect can be quantified; see the tests for the
bias-propagation checks.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .base import StopLengthDistribution

__all__ = ["CensoredDistribution"]


class CensoredDistribution(StopLengthDistribution):
    """Observations of ``base`` right-censored at ``ceiling``:
    ``y_observed = min(y, ceiling)``."""

    def __init__(self, base: StopLengthDistribution, ceiling: float) -> None:
        c = float(ceiling)
        if not np.isfinite(c) or c <= 0.0:
            raise InvalidParameterError(
                f"censoring ceiling must be a positive finite number, got {ceiling!r}"
            )
        self.base = base
        self.ceiling = c
        self.name = f"{base.name} censored@{c:g}"

    def cdf(self, stop_length: float) -> float:
        if stop_length >= self.ceiling:
            return 1.0
        return self.base.cdf(stop_length)

    def survival(self, stop_length: float) -> float:
        if stop_length > self.ceiling:
            return 0.0
        return self.base.survival(stop_length)

    def partial_expectation(self, upper: float) -> float:
        if upper <= self.ceiling:
            return self.base.partial_expectation(upper)
        # All mass at the atom min(y, c) = c lies below `upper`.
        return self.base.partial_expectation(self.ceiling) + (
            self.ceiling * self.base.survival(self.ceiling)
        )

    def mean(self) -> float:
        # E[min(y, c)] = partial expectation below c + c * P{y >= c}.
        return self.base.partial_expectation(self.ceiling) + (
            self.ceiling * self.base.survival(self.ceiling)
        )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.minimum(self.base.sample(count, rng), self.ceiling)

    def censoring_probability(self) -> float:
        """Fraction of observations that hit the ceiling."""
        return self.base.survival(self.ceiling)
