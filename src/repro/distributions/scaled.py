"""Mean-scaling of stop-length distributions.

Figures 5 and 6 sweep traffic conditions by "following the distribution of
Chicago, but scaling its mean value".  :class:`ScaledDistribution` applies
the linear change of variable ``y' = s * y`` to any base distribution —
shape-preserving in the sense that every normalized moment is unchanged —
and :func:`scale_to_mean` picks the factor that hits a target mean.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .base import StopLengthDistribution

__all__ = ["ScaledDistribution", "scale_to_mean"]


class ScaledDistribution(StopLengthDistribution):
    """``y' = scale * y`` for ``y`` drawn from ``base``."""

    def __init__(self, base: StopLengthDistribution, scale: float) -> None:
        s = float(scale)
        if not np.isfinite(s) or s <= 0.0:
            raise InvalidParameterError(f"scale must be a positive finite number, got {scale!r}")
        self.base = base
        self.scale = s
        self.name = f"{base.name} x{s:g}"

    def pdf(self, stop_length: float) -> float:
        return self.base.pdf(stop_length / self.scale) / self.scale

    def cdf(self, stop_length: float) -> float:
        return self.base.cdf(stop_length / self.scale)

    def survival(self, stop_length: float) -> float:
        return self.base.survival(stop_length / self.scale)

    def partial_expectation(self, upper: float) -> float:
        return self.scale * self.base.partial_expectation(upper / self.scale)

    def mean(self) -> float:
        return self.scale * self.base.mean()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return self.scale * self.base.sample(count, rng)


def scale_to_mean(
    base: StopLengthDistribution, target_mean: float
) -> ScaledDistribution:
    """Scale ``base`` so its mean equals ``target_mean`` (Figures 5-6)."""
    t = float(target_mean)
    if not np.isfinite(t) or t <= 0.0:
        raise InvalidParameterError(f"target mean must be a positive finite number, got {target_mean!r}")
    base_mean = base.mean()
    if not np.isfinite(base_mean) or base_mean <= 0.0:
        raise InvalidParameterError(
            f"base distribution must have a positive finite mean, got {base_mean!r}"
        )
    return ScaledDistribution(base, t / base_mean)
