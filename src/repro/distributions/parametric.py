"""Parametric stop-length distributions backed by :mod:`scipy.stats`.

These cover the distributions discussed in the paper and its related work:
exponential and uniform (the assumptions of Fujiwara & Iwama's average-case
analysis that Figure 3 argues against), plus the heavy-tailed families
(lognormal, Weibull, Pareto) used to synthesize NREL-like stop data.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sps

from ..errors import InvalidParameterError
from .base import StopLengthDistribution

__all__ = [
    "ScipyDistribution",
    "Exponential",
    "Uniform",
    "LogNormal",
    "Weibull",
    "Pareto",
]


class ScipyDistribution(StopLengthDistribution):
    """Adapter around a frozen non-negative scipy continuous distribution.

    Subclasses may override :meth:`partial_expectation` / :meth:`mean` with
    closed forms; the defaults use the scipy frozen distribution directly.
    """

    def __init__(self, frozen, name: str) -> None:
        self._frozen = frozen
        self.name = name
        lower = float(frozen.support()[0])
        if lower < 0.0:
            raise InvalidParameterError(
                f"stop-length distributions must be non-negative; "
                f"{name} has support starting at {lower}"
            )

    def pdf(self, stop_length: float) -> float:
        return float(self._frozen.pdf(stop_length))

    def cdf(self, stop_length: float) -> float:
        return float(self._frozen.cdf(stop_length))

    def survival(self, stop_length: float) -> float:
        return float(self._frozen.sf(stop_length))

    def mean(self) -> float:
        return float(self._frozen.mean())

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return np.asarray(self._frozen.rvs(size=count, random_state=rng), dtype=float)

    def partial_expectation(self, upper: float) -> float:
        if upper <= 0.0:
            return 0.0
        return float(self._frozen.expect(lambda y: y, lb=0.0, ub=upper))


class Exponential(ScipyDistribution):
    """Exponential stop lengths with a given mean (rate ``1/mean``)."""

    def __init__(self, mean: float) -> None:
        m = float(mean)
        if m <= 0.0:
            raise InvalidParameterError(f"mean must be > 0, got {mean!r}")
        super().__init__(sps.expon(scale=m), name=f"Exponential(mean={m:g})")
        self._mean = m

    def partial_expectation(self, upper: float) -> float:
        # ∫₀ᵘ y e^{-y/m}/m dy = m - (u + m) e^{-u/m}
        if upper <= 0.0:
            return 0.0
        m = self._mean
        return m - (upper + m) * math.exp(-upper / m)


class Uniform(ScipyDistribution):
    """Uniform stop lengths on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        lo, hi = float(low), float(high)
        if not 0.0 <= lo < hi:
            raise InvalidParameterError(
                f"uniform support must satisfy 0 <= low < high, got [{low}, {high}]"
            )
        super().__init__(sps.uniform(loc=lo, scale=hi - lo), name=f"Uniform[{lo:g}, {hi:g}]")
        self._low, self._high = lo, hi

    def partial_expectation(self, upper: float) -> float:
        u = min(max(float(upper), self._low), self._high)
        if u <= self._low:
            return 0.0
        width = self._high - self._low
        return (u * u - self._low * self._low) / (2.0 * width)


class LogNormal(ScipyDistribution):
    """Lognormal stop lengths parameterised by the underlying normal's
    ``mu`` and ``sigma`` (i.e. ``log(y) ~ Normal(mu, sigma)``)."""

    def __init__(self, mu: float, sigma: float) -> None:
        s = float(sigma)
        if s <= 0.0:
            raise InvalidParameterError(f"sigma must be > 0, got {sigma!r}")
        super().__init__(
            sps.lognorm(s=s, scale=math.exp(float(mu))),
            name=f"LogNormal(mu={float(mu):g}, sigma={s:g})",
        )
        self._mu, self._sigma = float(mu), s

    def partial_expectation(self, upper: float) -> float:
        # E[y 1{y<=u}] = exp(mu + sigma^2/2) * Phi((ln u - mu - sigma^2)/sigma)
        if upper <= 0.0:
            return 0.0
        mu, s = self._mu, self._sigma
        z = (math.log(upper) - mu - s * s) / s
        return math.exp(mu + 0.5 * s * s) * float(sps.norm.cdf(z))


class Weibull(ScipyDistribution):
    """Weibull stop lengths with shape ``k`` and scale ``lam``."""

    def __init__(self, shape: float, scale: float) -> None:
        k, lam = float(shape), float(scale)
        if k <= 0.0 or lam <= 0.0:
            raise InvalidParameterError(
                f"Weibull shape and scale must be > 0, got shape={shape!r}, scale={scale!r}"
            )
        super().__init__(
            sps.weibull_min(c=k, scale=lam), name=f"Weibull(shape={k:g}, scale={lam:g})"
        )


class Pareto(ScipyDistribution):
    """Pareto (Lomax-shifted) stop lengths: survival
    ``(scale / (scale + y))^alpha`` — a pure power-law tail anchored at 0,
    used for the long-parking tail of the synthetic fleets."""

    def __init__(self, alpha: float, scale: float) -> None:
        a, m = float(alpha), float(scale)
        if a <= 0.0 or m <= 0.0:
            raise InvalidParameterError(
                f"Pareto alpha and scale must be > 0, got alpha={alpha!r}, scale={scale!r}"
            )
        super().__init__(sps.lomax(c=a, scale=m), name=f"Pareto(alpha={a:g}, scale={m:g})")
        self._alpha, self._scale = a, m

    def mean(self) -> float:
        if self._alpha <= 1.0:
            return math.inf
        return self._scale / (self._alpha - 1.0)
