"""Finite mixtures of stop-length distributions.

The synthetic NREL-like fleets model stop lengths as a mixture of a
"signal/congestion" component (short, roughly lognormal) and a heavy
"errand/parking" tail — see :mod:`repro.fleet.areas`.  The mixture class is
fully generic: any components implementing
:class:`~repro.distributions.base.StopLengthDistribution` compose.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InvalidDistributionError, InvalidParameterError
from .base import StopLengthDistribution

__all__ = ["MixtureDistribution"]


class MixtureDistribution(StopLengthDistribution):
    """A convex combination of stop-length distributions."""

    def __init__(
        self,
        components: Sequence[StopLengthDistribution],
        weights: Sequence[float],
        name: str = "mixture",
    ) -> None:
        if len(components) == 0 or len(components) != len(weights):
            raise InvalidDistributionError(
                "components and weights must be matching non-empty sequences"
            )
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0.0):
            raise InvalidDistributionError("mixture weights must be non-negative")
        total = float(w.sum())
        if abs(total - 1.0) > 1e-9:
            raise InvalidDistributionError(f"mixture weights sum to {total}, expected 1")
        self.components = list(components)
        self.weights = w / total
        self.name = name

    def pdf(self, stop_length: float) -> float:
        return float(
            sum(w * c.pdf(stop_length) for w, c in zip(self.weights, self.components))
        )

    def cdf(self, stop_length: float) -> float:
        return float(
            sum(w * c.cdf(stop_length) for w, c in zip(self.weights, self.components))
        )

    def survival(self, stop_length: float) -> float:
        return float(
            sum(w * c.survival(stop_length) for w, c in zip(self.weights, self.components))
        )

    def partial_expectation(self, upper: float) -> float:
        return float(
            sum(
                w * c.partial_expectation(upper)
                for w, c in zip(self.weights, self.components)
            )
        )

    def mean(self) -> float:
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=float)
        picks = rng.choice(len(self.components), size=count, p=self.weights)
        out = np.empty(count, dtype=float)
        for index, component in enumerate(self.components):
            mask = picks == index
            n = int(mask.sum())
            if n:
                out[mask] = component.sample(n, rng)
        return out
