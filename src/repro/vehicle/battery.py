"""Battery-wear amortization (Appendix C.2.2, "Battery").

Each engine start discharges and re-charges the battery; cyclic endurance
bounds the number of starts a battery survives.  The paper amortizes a
stop-start battery's price (~$230, 2-4 year warranty) over the stops it
will serve, using the fleet-wide ``mu + 2 sigma ≈ 32.43`` stops/day bound
from Table 1 (95% of vehicles stop less often).  The result is
0.4841-0.9713 cents per start — at least 18.76 seconds of idling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["BatteryModel", "STOP_START_BATTERY", "TABLE1_STOPS_PER_DAY_BOUND"]

#: The paper's mu + 2 sigma upper bound on stops/day across the three
#: areas (Table 1 discussion): 12.49 + 2 * 9.97 = 32.43.
TABLE1_STOPS_PER_DAY_BOUND = 32.43

_DAYS_PER_YEAR = 365.0


@dataclass(frozen=True)
class BatteryModel:
    """Amortized battery wear per engine start.

    Attributes
    ----------
    price_dollars:
        Battery price (no labor — the paper's $230 figure).
    warranty_years:
        Warranty length used for the amortization window (2-4 years).
    stops_per_day:
        Stops/day assumed over the warranty; the paper's conservative
        choice is the Table 1 ``mu + 2 sigma`` bound.
    """

    price_dollars: float
    warranty_years: float
    stops_per_day: float = TABLE1_STOPS_PER_DAY_BOUND

    def __post_init__(self) -> None:
        if not np.isfinite(self.price_dollars) or self.price_dollars <= 0.0:
            raise InvalidParameterError(
                f"battery price must be > 0, got {self.price_dollars!r}"
            )
        if not np.isfinite(self.warranty_years) or self.warranty_years <= 0.0:
            raise InvalidParameterError(
                f"warranty must be > 0 years, got {self.warranty_years!r}"
            )
        if not np.isfinite(self.stops_per_day) or self.stops_per_day <= 0.0:
            raise InvalidParameterError(
                f"stops_per_day must be > 0, got {self.stops_per_day!r}"
            )

    def lifetime_starts(self) -> float:
        """Starts served during the warranty window."""
        return self.warranty_years * _DAYS_PER_YEAR * self.stops_per_day

    def cost_per_start_cents(self) -> float:
        """Amortized battery cost of one start, in cents.

        With the paper's parameters this spans 0.4841 cents (4-year
        warranty) to 0.9713 cents (2-year warranty).
        """
        return self.price_dollars * 100.0 / self.lifetime_starts()

    def equivalent_idling_seconds(self, idling_cost_cents_per_s: float) -> float:
        """Battery wear per start expressed as seconds of idling
        (>= 18.76 s with the paper's parameters)."""
        if idling_cost_cents_per_s <= 0.0:
            raise InvalidParameterError(
                f"idling cost must be > 0 cents/s, got {idling_cost_cents_per_s!r}"
            )
        return self.cost_per_start_cents() / idling_cost_cents_per_s


#: The paper's stop-start battery: $230, amortized over the longest
#: (4-year) warranty — the conservative lower bound on per-start cost.
STOP_START_BATTERY = BatteryModel(price_dollars=230.0, warranty_years=4.0)
