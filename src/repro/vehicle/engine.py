"""Engine idle-fuel model (Appendix C.1).

The idle fuel rate scales with engine displacement (Eq. 45, from the
Comprehensive Modal Emission Model):

.. math::

    fuel_{L/h} = 0.3644 \\cdot D + 0.5188

where ``D`` is displacement in liters.  Argonne's bench measurement of a
2011 Ford Fusion (2.5 L) found 0.279 cc/s; a measured rate can override
the regression.  The monetary idling cost follows Eq. (46):
``cost_idling/s = fuel_cc/s * price_per_gallon / 3785``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["EngineSpec", "CC_PER_GALLON", "FORD_FUSION_2011"]

#: Cubic centimetres per US gallon (Eq. 46 divisor).
CC_PER_GALLON = 3785.0

#: Eq. (45) regression coefficients.
_FUEL_SLOPE_L_PER_H = 0.3644
_FUEL_INTERCEPT_L_PER_H = 0.5188


@dataclass(frozen=True)
class EngineSpec:
    """An internal-combustion engine for idling-cost purposes.

    Attributes
    ----------
    displacement_liters:
        Engine displacement ``D`` in liters.
    measured_idle_cc_per_s:
        Optional bench-measured idle fuel rate (cc/s); overrides the
        Eq. (45) regression when provided (Argonne measured 0.279 cc/s on
        the 2.5 L Ford Fusion, below the regression's 0.397 cc/s).
    """

    displacement_liters: float
    measured_idle_cc_per_s: float | None = None

    def __post_init__(self) -> None:
        if not np.isfinite(self.displacement_liters) or self.displacement_liters <= 0.0:
            raise InvalidParameterError(
                f"displacement must be > 0 liters, got {self.displacement_liters!r}"
            )
        if self.measured_idle_cc_per_s is not None and (
            not np.isfinite(self.measured_idle_cc_per_s)
            or self.measured_idle_cc_per_s <= 0.0
        ):
            raise InvalidParameterError(
                f"measured idle rate must be > 0 cc/s, got {self.measured_idle_cc_per_s!r}"
            )

    def regression_idle_rate_l_per_h(self) -> float:
        """Eq. (45): idle fuel rate from displacement, in L/h."""
        return _FUEL_SLOPE_L_PER_H * self.displacement_liters + _FUEL_INTERCEPT_L_PER_H

    def idle_rate_cc_per_s(self) -> float:
        """Idle fuel rate in cc/s: measured if available, else Eq. (45)."""
        if self.measured_idle_cc_per_s is not None:
            return self.measured_idle_cc_per_s
        return self.regression_idle_rate_l_per_h() * 1000.0 / 3600.0

    def idling_cost_cents_per_s(self, fuel_price_per_gallon: float) -> float:
        """Eq. (46): monetary idling cost in cents/s.

        At $3.5/gallon the Ford Fusion's 0.279 cc/s gives ~0.0258 cent/s,
        the number every Appendix C amortization is normalized by.
        """
        if not np.isfinite(fuel_price_per_gallon) or fuel_price_per_gallon <= 0.0:
            raise InvalidParameterError(
                f"fuel price must be > 0 $/gallon, got {fuel_price_per_gallon!r}"
            )
        dollars_per_s = self.idle_rate_cc_per_s() * fuel_price_per_gallon / CC_PER_GALLON
        return dollars_per_s * 100.0


#: The Argonne test vehicle: 2011 Ford Fusion, 2.5 L I4, measured
#: 0.279 cc/s at idle.
FORD_FUSION_2011 = EngineSpec(displacement_liters=2.5, measured_idle_cc_per_s=0.279)
