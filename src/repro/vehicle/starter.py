"""Starter-wear amortization (Appendix C.2.2, "Starter Wear").

Conventional starters survive 20,000-40,000 starts; replacing one costs
$55-$400 in parts plus $115-$225 labor.  Amortized per start this is the
paper's 0.5-4 cents, i.e. 19.38-155.04 seconds of idling at
0.0258 cent/s.  Stop-start systems use strengthened starters rated for
~1.2 million starts — effectively free per start, which the paper models
as ``B_starter = 0`` for SSV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["StarterModel", "CONVENTIONAL_STARTER", "SSV_STARTER"]


@dataclass(frozen=True)
class StarterModel:
    """Amortized starter wear per engine start.

    Attributes
    ----------
    replacement_cost_dollars:
        Parts cost of one starter replacement.
    labor_cost_dollars:
        Labor cost of the replacement.
    starts_per_replacement:
        Expected starts before the starter fails.
    """

    replacement_cost_dollars: float
    labor_cost_dollars: float
    starts_per_replacement: float

    def __post_init__(self) -> None:
        for name in ("replacement_cost_dollars", "labor_cost_dollars"):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0.0:
                raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")
        if (
            not np.isfinite(self.starts_per_replacement)
            or self.starts_per_replacement <= 0.0
        ):
            raise InvalidParameterError(
                f"starts_per_replacement must be > 0, got {self.starts_per_replacement!r}"
            )

    def cost_per_start_cents(self) -> float:
        """Amortized wear cost of one start, in cents."""
        total = self.replacement_cost_dollars + self.labor_cost_dollars
        return total * 100.0 / self.starts_per_replacement

    def equivalent_idling_seconds(self, idling_cost_cents_per_s: float) -> float:
        """Starter wear per start expressed as seconds of idling."""
        if idling_cost_cents_per_s <= 0.0:
            raise InvalidParameterError(
                f"idling cost must be > 0 cents/s, got {idling_cost_cents_per_s!r}"
            )
        return self.cost_per_start_cents() / idling_cost_cents_per_s


#: Conservative (cheapest) conventional starter: $55 parts + $115 labor
#: over 34,000 starts ≈ 0.5 cents/start — the paper's lower bound, which
#: its "minimum break-even" of 47 s is built from.
CONVENTIONAL_STARTER = StarterModel(
    replacement_cost_dollars=55.0,
    labor_cost_dollars=115.0,
    starts_per_replacement=34000.0,
)

#: SSV starter: rated for 1.2 million starts (cpowert.com figure quoted in
#: the paper); the paper treats the per-start wear as zero, and even with
#: a $400 replacement the amortized cost is ~0.03 cents — negligible.
SSV_STARTER = StarterModel(
    replacement_cost_dollars=0.0,
    labor_cost_dollars=0.0,
    starts_per_replacement=1.2e6,
)
