"""The full Appendix C cost rollup: break-even interval derivation.

``B = cost_restart / cost_idling_per_s`` (Eq. 1), with the restart cost
the sum of four components, each expressed in seconds of idling:

* **fuel** — 10 s (reported consistently from 1981 through Argonne's
  measurements);
* **starter wear** — 0 for SSV, ~19.4 s minimum for conventional vehicles;
* **battery wear** — ~18.8 s minimum ($230 battery, 4-year warranty,
  Table 1's ``mu + 2 sigma`` stops/day bound);
* **emissions** — ~0.14 s (Sweden's NOx charge), negligible.

The paper floors the rollup to its headline "minimum break-even"
estimates: **28 s for SSV** and **47 s for conventional vehicles**; the
un-floored component sums are ~28.9 s and ~48.3 s respectively, and both
presets expose the full breakdown so the experiment harness can print the
derivation table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import RESTART_FUEL_IDLING_SECONDS
from .battery import STOP_START_BATTERY, BatteryModel
from .emissions import (
    ARGONNE_MEASUREMENTS,
    SWEDEN_NOX_PRICING,
    EmissionInventory,
    EmissionPricing,
)
from .engine import FORD_FUSION_2011, EngineSpec
from .starter import CONVENTIONAL_STARTER, SSV_STARTER, StarterModel

__all__ = [
    "BreakEvenBreakdown",
    "VehicleCostModel",
    "ssv_cost_model",
    "conventional_cost_model",
]


@dataclass(frozen=True)
class BreakEvenBreakdown:
    """Per-component restart cost in seconds of idling (the Appendix C
    derivation table)."""

    idling_cost_cents_per_s: float
    fuel_seconds: float
    starter_seconds: float
    battery_seconds: float
    emission_seconds: float

    @property
    def total_seconds(self) -> float:
        """The computed break-even interval ``B`` before any rounding."""
        return (
            self.fuel_seconds
            + self.starter_seconds
            + self.battery_seconds
            + self.emission_seconds
        )

    def as_rows(self) -> list[tuple[str, float]]:
        """(component, seconds) rows for report printing."""
        return [
            ("fuel", self.fuel_seconds),
            ("starter wear", self.starter_seconds),
            ("battery wear", self.battery_seconds),
            ("emissions", self.emission_seconds),
            ("total (B)", self.total_seconds),
        ]


@dataclass(frozen=True)
class VehicleCostModel:
    """A vehicle's complete idling/restart cost model.

    Attributes
    ----------
    engine:
        Engine spec (sets the idling fuel burn).
    starter:
        Starter wear model.
    battery:
        Battery wear model.
    emission_inventory, emission_pricing:
        Exhaust-gas measurements and the levy applied to them.
    fuel_price_per_gallon:
        Fuel price in dollars per gallon (the paper uses $3.5).
    restart_fuel_seconds:
        Fuel burned by one restart, as seconds of idling (10 s).
    """

    engine: EngineSpec
    starter: StarterModel
    battery: BatteryModel
    emission_inventory: EmissionInventory = ARGONNE_MEASUREMENTS
    emission_pricing: EmissionPricing = SWEDEN_NOX_PRICING
    fuel_price_per_gallon: float = 3.5
    restart_fuel_seconds: float = RESTART_FUEL_IDLING_SECONDS

    def idling_cost_cents_per_s(self) -> float:
        """Cost of one idling second: fuel (Eq. 46) plus monetized idle
        emissions."""
        fuel = self.engine.idling_cost_cents_per_s(self.fuel_price_per_gallon)
        emissions = self.emission_pricing.idling_cost_cents_per_s(
            self.emission_inventory
        )
        return fuel + emissions

    def breakdown(self) -> BreakEvenBreakdown:
        """The full Appendix C component table."""
        idle_cents = self.idling_cost_cents_per_s()
        return BreakEvenBreakdown(
            idling_cost_cents_per_s=idle_cents,
            fuel_seconds=self.restart_fuel_seconds,
            starter_seconds=self.starter.equivalent_idling_seconds(idle_cents),
            battery_seconds=self.battery.equivalent_idling_seconds(idle_cents),
            emission_seconds=self.emission_pricing.restart_cost_cents(
                self.emission_inventory
            )
            / idle_cents,
        )

    def break_even_seconds(self) -> float:
        """The break-even interval ``B`` (Eq. 1), in seconds."""
        return self.breakdown().total_seconds

    def restart_cost_cents(self) -> float:
        """Total restart cost in cents."""
        return self.break_even_seconds() * self.idling_cost_cents_per_s()


def ssv_cost_model(engine: EngineSpec = FORD_FUSION_2011) -> VehicleCostModel:
    """The paper's stop-start vehicle: strengthened starter (free per
    start), stop-start battery, Argonne emissions.  Break-even ≈ 28.9 s,
    floored to the headline ``B = 28``."""
    return VehicleCostModel(
        engine=engine,
        starter=SSV_STARTER,
        battery=STOP_START_BATTERY,
    )


def conventional_cost_model(engine: EngineSpec = FORD_FUSION_2011) -> VehicleCostModel:
    """The paper's conventional vehicle (no SSS): vulnerable starter at
    its conservative minimum wear, same battery amortization.  Break-even
    ≈ 48.3 s, matching the headline ``B = 47`` within rounding."""
    return VehicleCostModel(
        engine=engine,
        starter=CONVENTIONAL_STARTER,
        battery=STOP_START_BATTERY,
    )
