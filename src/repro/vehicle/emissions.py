"""Exhaust-emission accounting (Appendix C.2.3).

CO₂ scales with fuel burned, so a restart emits the CO₂ of ~10 s of
idling — already inside the fuel term.  The catalyst-cooling emissions
(THC, NOx, CO) are larger per restart than per idling second; Argonne's
measurements (used verbatim here):

=========  ==============  =================
Species    per restart     per idling second
=========  ==============  =================
THC        44 mg           0.266 mg
NOx        6 mg            0.0097 mg
CO         1253 mg         0.108 mg
=========  ==============  =================

Monetized at Sweden's NOx charge (~4.3 EUR/kg, the only species with a
meaningful levy) a restart costs ~$0.0035 *cents* — about 0.14 seconds of
idling, which is why the paper (and our presets) round the emission term
away in the final break-even.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["EmissionInventory", "EmissionPricing", "ARGONNE_MEASUREMENTS", "SWEDEN_NOX_PRICING"]


@dataclass(frozen=True)
class EmissionInventory:
    """Measured emissions per restart and per idling second (mg)."""

    restart_thc_mg: float
    restart_nox_mg: float
    restart_co_mg: float
    idle_thc_mg_per_s: float
    idle_nox_mg_per_s: float
    idle_co_mg_per_s: float

    def __post_init__(self) -> None:
        for name in (
            "restart_thc_mg",
            "restart_nox_mg",
            "restart_co_mg",
            "idle_thc_mg_per_s",
            "idle_nox_mg_per_s",
            "idle_co_mg_per_s",
        ):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0.0:
                raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")

    def restart_equivalent_idle_seconds(self, species: str) -> float:
        """Seconds of idling that emit as much of ``species`` as one
        restart — the physical (un-monetized) comparison."""
        pairs = {
            "thc": (self.restart_thc_mg, self.idle_thc_mg_per_s),
            "nox": (self.restart_nox_mg, self.idle_nox_mg_per_s),
            "co": (self.restart_co_mg, self.idle_co_mg_per_s),
        }
        if species not in pairs:
            raise InvalidParameterError(
                f"unknown species {species!r}; expected one of {sorted(pairs)}"
            )
        restart, idle_rate = pairs[species]
        if idle_rate <= 0.0:
            return float("inf") if restart > 0.0 else 0.0
        return restart / idle_rate


@dataclass(frozen=True)
class EmissionPricing:
    """Monetary charges per kilogram of pollutant (cents/kg)."""

    thc_cents_per_kg: float = 0.0
    nox_cents_per_kg: float = 0.0
    co_cents_per_kg: float = 0.0

    def __post_init__(self) -> None:
        for name in ("thc_cents_per_kg", "nox_cents_per_kg", "co_cents_per_kg"):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0.0:
                raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")

    def restart_cost_cents(self, inventory: EmissionInventory) -> float:
        """Monetized emission cost of one restart, in cents."""
        mg_to_kg = 1e-6
        return (
            inventory.restart_thc_mg * mg_to_kg * self.thc_cents_per_kg
            + inventory.restart_nox_mg * mg_to_kg * self.nox_cents_per_kg
            + inventory.restart_co_mg * mg_to_kg * self.co_cents_per_kg
        )

    def idling_cost_cents_per_s(self, inventory: EmissionInventory) -> float:
        """Monetized emission cost of one idling second, in cents."""
        mg_to_kg = 1e-6
        return (
            inventory.idle_thc_mg_per_s * mg_to_kg * self.thc_cents_per_kg
            + inventory.idle_nox_mg_per_s * mg_to_kg * self.nox_cents_per_kg
            + inventory.idle_co_mg_per_s * mg_to_kg * self.co_cents_per_kg
        )


#: Argonne National Laboratory's measurements, as cited in Appendix C.2.3.
ARGONNE_MEASUREMENTS = EmissionInventory(
    restart_thc_mg=44.0,
    restart_nox_mg=6.0,
    restart_co_mg=1253.0,
    idle_thc_mg_per_s=0.266,
    idle_nox_mg_per_s=0.0097,
    idle_co_mg_per_s=0.108,
)

#: Sweden's NOx charge: ~4.3 EUR/kg ≈ 580 cents/kg at 2014 exchange rates.
#: One restart then costs 6 mg * 580 cents/kg ≈ 0.0035 cents.
SWEDEN_NOX_PRICING = EmissionPricing(nox_cents_per_kg=580.0)
