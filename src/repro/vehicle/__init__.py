"""The Appendix C vehicle cost model: idling cost, restart cost and the
break-even interval derivation."""

from .battery import TABLE1_STOPS_PER_DAY_BOUND, BatteryModel, STOP_START_BATTERY
from .costmodel import (
    BreakEvenBreakdown,
    VehicleCostModel,
    conventional_cost_model,
    ssv_cost_model,
)
from .emissions import (
    ARGONNE_MEASUREMENTS,
    SWEDEN_NOX_PRICING,
    EmissionInventory,
    EmissionPricing,
)
from .engine import CC_PER_GALLON, FORD_FUSION_2011, EngineSpec
from .starter import CONVENTIONAL_STARTER, SSV_STARTER, StarterModel

__all__ = [
    "EngineSpec",
    "FORD_FUSION_2011",
    "CC_PER_GALLON",
    "StarterModel",
    "CONVENTIONAL_STARTER",
    "SSV_STARTER",
    "BatteryModel",
    "STOP_START_BATTERY",
    "TABLE1_STOPS_PER_DAY_BOUND",
    "EmissionInventory",
    "EmissionPricing",
    "ARGONNE_MEASUREMENTS",
    "SWEDEN_NOX_PRICING",
    "BreakEvenBreakdown",
    "VehicleCostModel",
    "ssv_cost_model",
    "conventional_cost_model",
]
