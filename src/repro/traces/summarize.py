"""Per-trace and per-fleet summaries.

These produce the descriptive statistics the paper reports around its
evaluation: stops per day (Table 1), idle fractions (the 13-23% claim in
the introduction), and stop-length moments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import TraceFormatError
from .events import DrivingTrace

__all__ = ["TraceSummary", "summarize_trace", "stops_per_day_table"]


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of one vehicle's driving record."""

    vehicle_id: str
    stop_count: int
    stops_per_day: float
    mean_stop_length: float
    median_stop_length: float
    max_stop_length: float
    idle_fraction: float


def summarize_trace(trace: DrivingTrace) -> TraceSummary:
    """Compute the per-vehicle summary used in the fleet reports."""
    lengths = trace.stop_lengths()
    if lengths.size == 0:
        raise TraceFormatError(f"trace {trace.vehicle_id!r} contains no stops")
    return TraceSummary(
        vehicle_id=trace.vehicle_id,
        stop_count=int(lengths.size),
        stops_per_day=trace.stops_per_day,
        mean_stop_length=float(lengths.mean()),
        median_stop_length=float(np.median(lengths)),
        max_stop_length=float(lengths.max()),
        idle_fraction=trace.idle_fraction,
    )


def stops_per_day_table(traces: Sequence[DrivingTrace] | Iterable[DrivingTrace]) -> dict:
    """The Table 1 row for a set of vehicles: mean and std of stops/day
    plus the fraction of vehicles within ``mu + 2 sigma``.

    The paper uses ``P{X <= mu + 2 sigma}`` (reported at 0.91-0.96) to
    justify the ``mu + 2 sigma`` upper bound in the battery amortization.
    """
    stops_per_day = np.array([trace.stops_per_day for trace in traces], dtype=float)
    if stops_per_day.size == 0:
        raise TraceFormatError("need at least one trace for a stops/day table")
    mean = float(stops_per_day.mean())
    std = float(stops_per_day.std(ddof=1)) if stops_per_day.size > 1 else 0.0
    bound = mean + 2.0 * std
    return {
        "vehicles": int(stops_per_day.size),
        "mean": mean,
        "std": std,
        "p_within_2_sigma": float((stops_per_day <= bound).mean()),
        "upper_bound": bound,
    }
