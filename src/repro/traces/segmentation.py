"""Trip segmentation: splitting raw speed records into trips.

Telematics devices usually log one long speed stream per day; the
ski-rental analysis needs *within-trip* stops (ignition on, engine
idling) separated from *between-trip* parking (ignition off — no idling
decision exists).  :func:`segment_trips` applies the standard heuristic:
a stationary period longer than ``ignition_off_gap`` ends the trip; the
stationary time itself belongs to neither trip.

The resulting trips carry their own extracted stops (via
:func:`~repro.traces.speed.extract_stops` with the given thresholds), so
``segment_trips`` is the one-call bridge from a raw daily speed log to a
:class:`~repro.traces.events.DrivingTrace`.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceFormatError
from ..validation import Policy, PolicyEnforcer, ValidationReport, speed_sample_findings
from .events import DrivingTrace, Trip
from .speed import SpeedTrace, extract_stops

__all__ = ["segment_trips", "trace_from_daily_log", "speed_trace_from_samples"]


def speed_trace_from_samples(
    start_time: float,
    dt: float,
    speeds,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
    source: str = "speed-log",
) -> SpeedTrace:
    """Build a :class:`~repro.traces.speed.SpeedTrace` from raw telemetry.

    Real 1 Hz speed logs contain dropouts (NaN), sensor glitches (inf)
    and sign noise; the :class:`SpeedTrace` constructor rejects all of
    them outright.  This is the policy-aware front door: under
    ``strict`` bad samples raise with their sample index; under
    ``repair``/``quarantine`` the deterministic rule is *clamp to 0*
    (treat the sample as stationary) for non-finite values and negative
    values alike — dropping samples would shift every later timestamp
    in a uniformly sampled series, which is worse than a conservative
    stationary reading.  Each clamp is logged as a ``repaired`` issue.
    """
    import numpy as np

    enforcer = PolicyEnforcer(policy, report, source)
    y = np.asarray(speeds, dtype=float).ravel().copy()
    enforcer.report.records_checked += int(y.size)
    for index, check, message in speed_sample_findings(y):
        enforcer.flag(check, message, line=index, repaired=True)
        y[index] = 0.0
    enforcer.report.emit_to_ledger(source=source)
    return SpeedTrace(start_time=start_time, dt=dt, speeds=y)


def segment_trips(
    trace: SpeedTrace,
    ignition_off_gap: float = 300.0,
    speed_threshold: float = 0.5,
    min_duration: float = 2.0,
    merge_gap: float = 3.0,
    min_trip_duration: float = 30.0,
) -> list[Trip]:
    """Split a raw speed log into trips.

    Parameters
    ----------
    trace:
        The full-day (or longer) speed record.
    ignition_off_gap:
        Stationary periods at least this long (s) are treated as
        ignition-off parking and split trips.
    speed_threshold, min_duration, merge_gap:
        Passed to the within-trip stop extraction.
    min_trip_duration:
        Trips shorter than this (s) are discarded (GPS jitter while
        parked).
    """
    if ignition_off_gap <= 0.0:
        raise TraceFormatError(f"ignition_off_gap must be > 0, got {ignition_off_gap!r}")
    if min_trip_duration < 0.0:
        raise TraceFormatError(
            f"min_trip_duration must be >= 0, got {min_trip_duration!r}"
        )
    moving = trace.speeds >= speed_threshold
    if not moving.any():
        return []
    gap_samples = int(np.ceil(ignition_off_gap / trace.dt))
    moving_indices = np.flatnonzero(moving)
    # Trip boundaries: breaks between consecutive moving samples longer
    # than the ignition gap.
    breaks = np.flatnonzero(np.diff(moving_indices) > gap_samples)
    starts = [moving_indices[0]] + [moving_indices[i + 1] for i in breaks]
    ends = [moving_indices[i] for i in breaks] + [moving_indices[-1]]
    trips = []
    for start, end in zip(starts, ends):
        duration = (end - start + 1) * trace.dt
        if duration < min_trip_duration:
            continue
        start_time = trace.start_time + start * trace.dt
        segment = SpeedTrace(
            start_time=start_time,
            dt=trace.dt,
            speeds=trace.speeds[start : end + 1],
        )
        stops = extract_stops(
            segment,
            speed_threshold=speed_threshold,
            min_duration=min_duration,
            merge_gap=merge_gap,
        )
        trips.append(
            Trip(start_time=start_time, duration=duration, stops=tuple(stops))
        )
    return trips


def trace_from_daily_log(
    vehicle_id: str,
    trace: SpeedTrace,
    recording_days: float | None = None,
    area: str | None = None,
    **segmentation_kwargs,
) -> DrivingTrace:
    """One-call pipeline: raw speed log → segmented DrivingTrace."""
    trips = segment_trips(trace, **segmentation_kwargs)
    days = (
        recording_days
        if recording_days is not None
        else max(trace.duration / 86400.0, 1e-6)
    )
    return DrivingTrace(
        vehicle_id=vehicle_id,
        trips=tuple(trips),
        recording_days=days,
        area=area,
    )
