"""Driving-trace event model.

The NREL data the paper uses is, for our purposes, a collection of
*stop events* per vehicle over one week of driving.  This module defines
the value objects carrying that structure:

* :class:`StopEvent` — one contiguous period at rest (start time +
  duration);
* :class:`Trip` — one ignition-on period containing its stops;
* :class:`DrivingTrace` — a vehicle's full record (trips + metadata).

Times are seconds since the start of the recording; durations are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import TraceFormatError

__all__ = ["StopEvent", "Trip", "DrivingTrace", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class StopEvent:
    """A contiguous vehicle stop: the engine-idling decision point."""

    start_time: float
    duration: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.start_time) or self.start_time < 0.0:
            raise TraceFormatError(f"stop start_time must be >= 0, got {self.start_time!r}")
        if not np.isfinite(self.duration) or self.duration < 0.0:
            raise TraceFormatError(f"stop duration must be >= 0, got {self.duration!r}")

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass(frozen=True)
class Trip:
    """One ignition-on period: driving plus its embedded stops."""

    start_time: float
    duration: float
    stops: tuple[StopEvent, ...] = ()

    def __post_init__(self) -> None:
        if not np.isfinite(self.start_time) or self.start_time < 0.0:
            raise TraceFormatError(f"trip start_time must be >= 0, got {self.start_time!r}")
        if not np.isfinite(self.duration) or self.duration <= 0.0:
            raise TraceFormatError(f"trip duration must be > 0, got {self.duration!r}")
        for stop in self.stops:
            if stop.start_time < self.start_time - 1e-9 or stop.end_time > self.end_time + 1e-9:
                raise TraceFormatError(
                    f"stop {stop} falls outside trip window "
                    f"[{self.start_time}, {self.end_time}]"
                )
        object.__setattr__(self, "stops", tuple(self.stops))

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def total_stop_time(self) -> float:
        return float(sum(stop.duration for stop in self.stops))

    @property
    def idle_fraction(self) -> float:
        """Fraction of the trip spent stopped (paper: 13-23% on average)."""
        return self.total_stop_time / self.duration


@dataclass
class DrivingTrace:
    """A vehicle's driving record over a recording window.

    Attributes
    ----------
    vehicle_id:
        Stable identifier within a fleet.
    trips:
        Chronologically ordered, non-overlapping trips.
    recording_days:
        Length of the recording window (the paper's records are 7 days).
    area:
        Optional area label ("california", "chicago", "atlanta").
    """

    vehicle_id: str
    trips: Sequence[Trip]
    recording_days: float = 7.0
    area: str | None = None
    _trips: tuple[Trip, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not np.isfinite(self.recording_days) or self.recording_days <= 0.0:
            raise TraceFormatError(
                f"recording_days must be > 0, got {self.recording_days!r}"
            )
        trips = tuple(self.trips)
        for earlier, later in zip(trips, trips[1:]):
            if later.start_time < earlier.end_time - 1e-9:
                raise TraceFormatError(
                    f"trips overlap: {earlier.end_time} > {later.start_time}"
                )
        self._trips = trips
        self.trips = trips

    @classmethod
    def from_stop_lengths(
        cls,
        vehicle_id: str,
        stop_lengths: Iterable[float],
        recording_days: float = 7.0,
        area: str | None = None,
    ) -> "DrivingTrace":
        """Build a minimal trace directly from stop lengths.

        The stops are laid out sequentially inside one synthetic trip
        (with unit driving gaps); convenient when only the stop-length
        sample matters, which is all the competitive analysis needs.
        """
        lengths = [float(v) for v in stop_lengths]
        cursor = 1.0
        stops = []
        for length in lengths:
            stops.append(StopEvent(start_time=cursor, duration=length))
            cursor += length + 1.0
        trip = Trip(start_time=0.0, duration=cursor + 1.0, stops=tuple(stops))
        return cls(
            vehicle_id=vehicle_id,
            trips=(trip,),
            recording_days=recording_days,
            area=area,
        )

    @property
    def stops(self) -> tuple[StopEvent, ...]:
        """All stop events across all trips, in chronological order."""
        return tuple(stop for trip in self._trips for stop in trip.stops)

    def stop_lengths(self) -> np.ndarray:
        """The stop-length sample — the input to every strategy."""
        return np.array([stop.duration for stop in self.stops], dtype=float)

    @property
    def stop_count(self) -> int:
        return sum(len(trip.stops) for trip in self._trips)

    @property
    def stops_per_day(self) -> float:
        """Average stops per recorded day (the Table 1 quantity)."""
        return self.stop_count / self.recording_days

    @property
    def total_drive_time(self) -> float:
        return float(sum(trip.duration for trip in self._trips))

    @property
    def idle_fraction(self) -> float:
        """Fraction of total driving time spent stopped."""
        drive = self.total_drive_time
        if drive <= 0.0:
            return 0.0
        return float(sum(trip.total_stop_time for trip in self._trips)) / drive
