"""Speed traces and stop extraction.

Real driving data arrives as second-resolution speed profiles; stops must
be *extracted* before any ski-rental analysis.  :class:`SpeedTrace` is a
uniformly sampled speed time series; :func:`extract_stops` applies the
standard threshold + debounce pipeline:

1. mark samples with speed below ``speed_threshold`` as "at rest";
2. merge rest periods separated by sub-``merge_gap`` blips (creeping in a
   queue should count as one stop, not many);
3. drop rest periods shorter than ``min_duration`` (sensor noise).

The thresholds are exposed because the ablation benchmark studies their
effect on the extracted stop-length distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceFormatError
from .events import StopEvent

__all__ = ["SpeedTrace", "extract_stops"]


@dataclass
class SpeedTrace:
    """A uniformly sampled speed profile.

    Attributes
    ----------
    start_time:
        Timestamp of the first sample (seconds).
    dt:
        Sampling period in seconds (NREL-style data is 1 Hz).
    speeds:
        Speed samples in m/s; non-negative.
    """

    start_time: float
    dt: float
    speeds: np.ndarray

    def __post_init__(self) -> None:
        self.speeds = np.asarray(self.speeds, dtype=float)
        if self.speeds.ndim != 1 or self.speeds.size == 0:
            raise TraceFormatError("speeds must be a non-empty 1-D array")
        if np.any(~np.isfinite(self.speeds)) or np.any(self.speeds < 0.0):
            raise TraceFormatError("speeds must be non-negative and finite")
        if not np.isfinite(self.dt) or self.dt <= 0.0:
            raise TraceFormatError(f"dt must be > 0, got {self.dt!r}")
        if not np.isfinite(self.start_time) or self.start_time < 0.0:
            raise TraceFormatError(f"start_time must be >= 0, got {self.start_time!r}")

    @property
    def duration(self) -> float:
        return self.speeds.size * self.dt

    @property
    def times(self) -> np.ndarray:
        return self.start_time + self.dt * np.arange(self.speeds.size)

    def distance(self) -> float:
        """Total distance travelled (m), by rectangle-rule integration."""
        return float(self.speeds.sum() * self.dt)


def _rest_runs(at_rest: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous True runs of the rest mask as (start, stop) index pairs
    (stop exclusive)."""
    if not at_rest.any():
        return []
    padded = np.concatenate([[False], at_rest, [False]])
    changes = np.flatnonzero(np.diff(padded.astype(int)))
    return list(zip(changes[0::2], changes[1::2]))


def extract_stops(
    trace: SpeedTrace,
    speed_threshold: float = 0.5,
    min_duration: float = 2.0,
    merge_gap: float = 3.0,
) -> list[StopEvent]:
    """Extract stop events from a speed trace.

    Parameters
    ----------
    trace:
        The speed profile to segment.
    speed_threshold:
        Speed (m/s) below which the vehicle counts as at rest.
    min_duration:
        Minimum stop duration (s); shorter rest periods are discarded.
    merge_gap:
        Rest periods separated by moving gaps shorter than this (s) are
        merged into one stop (queue creep).

    Returns
    -------
    list[StopEvent]
        Chronologically ordered stops.
    """
    if speed_threshold < 0.0:
        raise TraceFormatError(f"speed_threshold must be >= 0, got {speed_threshold!r}")
    if min_duration < 0.0 or merge_gap < 0.0:
        raise TraceFormatError("min_duration and merge_gap must be >= 0")
    at_rest = trace.speeds < speed_threshold
    runs = _rest_runs(at_rest)
    if not runs:
        return []
    # Merge runs separated by short moving gaps.
    gap_samples = merge_gap / trace.dt
    merged: list[list[int]] = [list(runs[0])]
    for start, stop in runs[1:]:
        if start - merged[-1][1] < gap_samples:
            merged[-1][1] = stop
        else:
            merged.append([start, stop])
    stops = []
    min_samples = max(1, int(np.ceil(min_duration / trace.dt)))
    for start, stop in merged:
        if stop - start < min_samples:
            continue
        stops.append(
            StopEvent(
                start_time=trace.start_time + start * trace.dt,
                duration=(stop - start) * trace.dt,
            )
        )
    return stops
