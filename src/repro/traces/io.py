"""Trace serialization: CSV stop tables and JSON trace documents.

Two interchange formats are supported:

* **stop CSV** — one row per stop (``vehicle_id,start_time,duration``);
  the minimal format every analysis consumes;
* **trace JSON** — full :class:`~repro.traces.events.DrivingTrace`
  documents including trip structure and metadata.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..errors import TraceFormatError
from ..validation import (
    CsvQuarantineWriter,
    JsonQuarantineWriter,
    Policy,
    PolicyEnforcer,
    ValidationReport,
    stop_order_finding,
    stop_row_findings,
    trace_document_findings,
)
from .events import DrivingTrace, StopEvent, Trip

__all__ = [
    "write_stops_csv",
    "read_stops_csv",
    "trace_to_dict",
    "trace_from_dict",
    "write_traces_json",
    "read_traces_json",
]

_CSV_HEADER = ["vehicle_id", "start_time", "duration"]


def write_stops_csv(path: str | Path, traces: Iterable[DrivingTrace]) -> None:
    """Write all stops of the given traces as a flat CSV table."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for trace in traces:
            for stop in trace.stops:
                writer.writerow([trace.vehicle_id, stop.start_time, stop.duration])


def read_stops_csv(
    path: str | Path,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
) -> dict[str, np.ndarray]:
    """Read a stop CSV back as ``{vehicle_id: stop_lengths}``.

    Every row runs through the validation catalog (column count, empty
    vehicle id, unparseable / non-finite / negative duration and start
    time, out-of-order and overlapping stop times) under ``policy``:

    * ``strict`` (default) — raise
      :class:`~repro.errors.DataValidationError` naming the offending
      line at the first bad row;
    * ``repair`` — drop bad rows deterministically and log them in the
      ``report``;
    * ``quarantine`` — additionally divert bad rows verbatim to
      ``<path>.quarantine.csv``.

    Vehicles left with zero rows are removed (an ``empty-vehicle``
    issue).  When a run ledger is active the report is summarized into
    it as one ``validation`` event.
    """
    path = Path(path)
    enforcer = PolicyEnforcer(policy, report, path)
    if enforcer.policy is Policy.QUARANTINE:
        enforcer.attach_quarantine_writer(CsvQuarantineWriter(path, enforcer.report))
    per_vehicle: dict[str, list[float]] = {}
    # (last start_time, last end_time) per vehicle for order/overlap checks.
    last_window: dict[str, tuple[float, float]] = {}
    seen_vehicles: set[str] = set()
    try:
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != _CSV_HEADER:
                raise TraceFormatError(
                    f"unexpected stop CSV header {header!r}; expected {_CSV_HEADER!r}"
                )
            rows = 0
            for line_number, row in enumerate(reader, start=2):
                rows += 1
                enforcer.report.records_checked += 1
                findings, vehicle_id, start_time, duration = stop_row_findings(row)
                if vehicle_id is not None:
                    seen_vehicles.add(vehicle_id)
                if not findings and vehicle_id in last_window:
                    prev_start, prev_end = last_window[vehicle_id]
                    ordering = stop_order_finding(prev_start, prev_end, start_time)
                    if ordering is not None:
                        findings.append(ordering)
                kept = True
                for check, message in findings:
                    kept = enforcer.flag(
                        check, message, line=line_number, record=row
                    ) and kept
                if not kept:
                    continue
                last_window[vehicle_id] = (start_time, start_time + duration)
                per_vehicle.setdefault(vehicle_id, []).append(duration)
            if rows == 0:
                enforcer.flag("empty-table", "no data rows", line=None, record=[])
        for vehicle_id in sorted(seen_vehicles - set(per_vehicle)):
            enforcer.flag(
                "empty-vehicle",
                f"vehicle {vehicle_id!r} lost every stop to validation",
                severity="warning",
            )
    finally:
        enforcer.close()
    enforcer.report.emit_to_ledger(source=str(path))
    return {vid: np.asarray(values, dtype=float) for vid, values in per_vehicle.items()}


def trace_to_dict(trace: DrivingTrace) -> dict:
    """Serialize a trace to a JSON-compatible dict."""
    return {
        "vehicle_id": trace.vehicle_id,
        "recording_days": trace.recording_days,
        "area": trace.area,
        "trips": [
            {
                "start_time": trip.start_time,
                "duration": trip.duration,
                "stops": [
                    {"start_time": stop.start_time, "duration": stop.duration}
                    for stop in trip.stops
                ],
            }
            for trip in trace.trips
        ],
    }


def trace_from_dict(document: Mapping) -> DrivingTrace:
    """Deserialize a trace document (inverse of :func:`trace_to_dict`)."""
    try:
        trips = tuple(
            Trip(
                start_time=float(trip["start_time"]),
                duration=float(trip["duration"]),
                stops=tuple(
                    StopEvent(float(stop["start_time"]), float(stop["duration"]))
                    for stop in trip.get("stops", [])
                ),
            )
            for trip in document["trips"]
        )
        return DrivingTrace(
            vehicle_id=str(document["vehicle_id"]),
            trips=trips,
            recording_days=float(document.get("recording_days", 7.0)),
            area=document.get("area"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace document: {exc}") from exc


def write_traces_json(path: str | Path, traces: Iterable[DrivingTrace]) -> None:
    """Write traces as a JSON array of trace documents."""
    with open(path, "w") as handle:
        json.dump([trace_to_dict(trace) for trace in traces], handle)


def read_traces_json(
    path: str | Path,
    policy: Policy | str = Policy.STRICT,
    report: ValidationReport | None = None,
) -> list[DrivingTrace]:
    """Read traces previously written by :func:`write_traces_json`.

    Each document runs through the structural checks of the validation
    catalog plus the full :func:`trace_from_dict` constructor under
    ``policy``: ``strict`` raises with the record index, ``repair``
    drops malformed documents, ``quarantine`` diverts them to
    ``<path>.quarantine.json``.
    """
    path = Path(path)
    enforcer = PolicyEnforcer(policy, report, path)
    if enforcer.policy is Policy.QUARANTINE:
        enforcer.attach_quarantine_writer(JsonQuarantineWriter(path, enforcer.report))
    try:
        with open(path) as handle:
            try:
                documents = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(documents, list):
            raise TraceFormatError("trace JSON must contain an array of trace documents")
        traces = []
        for index, document in enumerate(documents):
            enforcer.report.records_checked += 1
            findings = trace_document_findings(document)
            if not findings:
                try:
                    traces.append(trace_from_dict(document))
                    continue
                except TraceFormatError as exc:
                    findings = [("malformed-document", str(exc))]
            for check, message in findings:
                enforcer.flag(check, message, line=index, record=document)
    finally:
        enforcer.close()
    enforcer.report.emit_to_ledger(source=str(path))
    return traces
