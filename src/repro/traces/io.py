"""Trace serialization: CSV stop tables and JSON trace documents.

Two interchange formats are supported:

* **stop CSV** — one row per stop (``vehicle_id,start_time,duration``);
  the minimal format every analysis consumes;
* **trace JSON** — full :class:`~repro.traces.events.DrivingTrace`
  documents including trip structure and metadata.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..errors import TraceFormatError
from .events import DrivingTrace, StopEvent, Trip

__all__ = [
    "write_stops_csv",
    "read_stops_csv",
    "trace_to_dict",
    "trace_from_dict",
    "write_traces_json",
    "read_traces_json",
]

_CSV_HEADER = ["vehicle_id", "start_time", "duration"]


def write_stops_csv(path: str | Path, traces: Iterable[DrivingTrace]) -> None:
    """Write all stops of the given traces as a flat CSV table."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for trace in traces:
            for stop in trace.stops:
                writer.writerow([trace.vehicle_id, stop.start_time, stop.duration])


def read_stops_csv(path: str | Path) -> dict[str, np.ndarray]:
    """Read a stop CSV back as ``{vehicle_id: stop_lengths}``."""
    per_vehicle: dict[str, list[float]] = {}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise TraceFormatError(
                f"unexpected stop CSV header {header!r}; expected {_CSV_HEADER!r}"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise TraceFormatError(f"line {line_number}: expected 3 columns, got {len(row)}")
            vehicle_id, _, duration = row
            try:
                value = float(duration)
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {line_number}: bad duration {duration!r}"
                ) from exc
            per_vehicle.setdefault(vehicle_id, []).append(value)
    return {vid: np.asarray(values, dtype=float) for vid, values in per_vehicle.items()}


def trace_to_dict(trace: DrivingTrace) -> dict:
    """Serialize a trace to a JSON-compatible dict."""
    return {
        "vehicle_id": trace.vehicle_id,
        "recording_days": trace.recording_days,
        "area": trace.area,
        "trips": [
            {
                "start_time": trip.start_time,
                "duration": trip.duration,
                "stops": [
                    {"start_time": stop.start_time, "duration": stop.duration}
                    for stop in trip.stops
                ],
            }
            for trip in trace.trips
        ],
    }


def trace_from_dict(document: Mapping) -> DrivingTrace:
    """Deserialize a trace document (inverse of :func:`trace_to_dict`)."""
    try:
        trips = tuple(
            Trip(
                start_time=float(trip["start_time"]),
                duration=float(trip["duration"]),
                stops=tuple(
                    StopEvent(float(stop["start_time"]), float(stop["duration"]))
                    for stop in trip.get("stops", [])
                ),
            )
            for trip in document["trips"]
        )
        return DrivingTrace(
            vehicle_id=str(document["vehicle_id"]),
            trips=trips,
            recording_days=float(document.get("recording_days", 7.0)),
            area=document.get("area"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace document: {exc}") from exc


def write_traces_json(path: str | Path, traces: Iterable[DrivingTrace]) -> None:
    """Write traces as a JSON array of trace documents."""
    with open(path, "w") as handle:
        json.dump([trace_to_dict(trace) for trace in traces], handle)


def read_traces_json(path: str | Path) -> list[DrivingTrace]:
    """Read traces previously written by :func:`write_traces_json`."""
    with open(path) as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise TraceFormatError("trace JSON must contain an array of trace documents")
    return [trace_from_dict(document) for document in documents]
