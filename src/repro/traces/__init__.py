"""Driving traces: stop events, speed profiles, extraction and IO."""

from .events import SECONDS_PER_DAY, DrivingTrace, StopEvent, Trip
from .io import (
    read_stops_csv,
    read_traces_json,
    trace_from_dict,
    trace_to_dict,
    write_stops_csv,
    write_traces_json,
)
from .segmentation import segment_trips, speed_trace_from_samples, trace_from_daily_log
from .speed import SpeedTrace, extract_stops
from .summarize import TraceSummary, stops_per_day_table, summarize_trace

__all__ = [
    "SECONDS_PER_DAY",
    "StopEvent",
    "Trip",
    "DrivingTrace",
    "SpeedTrace",
    "extract_stops",
    "segment_trips",
    "speed_trace_from_samples",
    "trace_from_daily_log",
    "write_stops_csv",
    "read_stops_csv",
    "trace_to_dict",
    "trace_from_dict",
    "write_traces_json",
    "read_traces_json",
    "TraceSummary",
    "summarize_trace",
    "stops_per_day_table",
]
