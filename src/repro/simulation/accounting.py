"""Cost accounting for stop-start simulations.

The :class:`CostLedger` accumulates what a controller actually did over a
driving record — idling seconds, restart count — and converts to costs:
the canonical normalized unit (seconds of idling, where one restart costs
``B`` seconds), physical fuel (cc), and money (cents, via a
:class:`~repro.vehicle.costmodel.VehicleCostModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InvalidParameterError
from ..vehicle.costmodel import VehicleCostModel

__all__ = ["CostLedger"]


@dataclass
class CostLedger:
    """Accumulated idling/restart activity of one simulated controller.

    Attributes
    ----------
    break_even:
        The break-even interval ``B`` used to normalize restart costs.
    idle_seconds:
        Total engine-on idle time across all stops.
    restarts:
        Number of engine restarts performed.
    stops:
        Number of stop events processed.
    """

    break_even: float
    idle_seconds: float = 0.0
    restarts: int = 0
    stops: int = 0
    _per_stop_costs: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not np.isfinite(self.break_even) or self.break_even <= 0.0:
            raise InvalidParameterError(
                f"break_even must be > 0, got {self.break_even!r}"
            )

    def record_stop(self, idle_seconds: float, restarted: bool) -> None:
        """Record one stop's outcome."""
        if not np.isfinite(idle_seconds) or idle_seconds < 0.0:
            raise InvalidParameterError(
                f"idle_seconds must be >= 0, got {idle_seconds!r}"
            )
        self.idle_seconds += idle_seconds
        self.stops += 1
        if restarted:
            self.restarts += 1
        self._per_stop_costs.append(
            idle_seconds + (self.break_even if restarted else 0.0)
        )

    @property
    def total_cost_seconds(self) -> float:
        """Total cost in the normalized unit: idle seconds plus ``B`` per
        restart (exactly the paper's cost model)."""
        return self.idle_seconds + self.restarts * self.break_even

    @property
    def per_stop_costs(self) -> np.ndarray:
        """Normalized cost of each recorded stop, in order."""
        return np.asarray(self._per_stop_costs, dtype=float)

    def fuel_cc(self, cost_model: VehicleCostModel) -> float:
        """Physical fuel burned (cc): idle burn plus restart burn."""
        rate = cost_model.engine.idle_rate_cc_per_s()
        restart_cc = cost_model.restart_fuel_seconds * rate
        return self.idle_seconds * rate + self.restarts * restart_cc

    def cost_cents(self, cost_model: VehicleCostModel) -> float:
        """Monetary cost (cents): idling plus full restart cost (fuel,
        wear, emissions) per the vehicle's cost model."""
        idle_rate = cost_model.idling_cost_cents_per_s()
        return self.idle_seconds * idle_rate + self.restarts * cost_model.restart_cost_cents()

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Combine two ledgers (e.g. per-trip ledgers into a vehicle
        ledger).  Break-even intervals must match."""
        if abs(other.break_even - self.break_even) > 1e-12:
            raise InvalidParameterError(
                "cannot merge ledgers with different break-even intervals"
            )
        merged = CostLedger(self.break_even)
        merged.idle_seconds = self.idle_seconds + other.idle_seconds
        merged.restarts = self.restarts + other.restarts
        merged.stops = self.stops + other.stops
        merged._per_stop_costs = list(self._per_stop_costs) + list(other._per_stop_costs)
        return merged
