"""Event-level simulation of multislope (multi-engine-state) policies.

Extends the two-state simulation of :mod:`repro.simulation.engine_sim`
to the multislope setting of :mod:`repro.core.multislope`: during one
stop the controller walks down the engine states at its chosen switch
times, paying each state's idle rate and each switch's incremental cost.

Two controllers are provided:

* :class:`EnvelopeController` — the deterministic follow-the-envelope
  policy (switch times = the offline transition points);
* :class:`RandomizedMultislopeController` — draws a pure switch profile
  per stop from a :class:`~repro.core.multislope_game.MultislopeGameSolution`
  (the LP-optimal randomization).

Costs are validated against :func:`~repro.core.multislope_game.pure_strategy_cost`
by the tests, and the offline reference is the multislope envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.multislope import FollowTheEnvelope, MultislopeProblem
from ..core.multislope_game import MultislopeGameSolution, pure_strategy_cost
from ..errors import DegenerateStatisticsError, InvalidParameterError

__all__ = [
    "MultistateStopRecord",
    "MultistateSimulationResult",
    "EnvelopeController",
    "RandomizedMultislopeController",
    "simulate_multistate",
]


@dataclass(frozen=True)
class MultistateStopRecord:
    """One stop's outcome: the profile used, final state and cost."""

    stop_length: float
    switch_times: tuple[float, ...]
    final_state: int
    cost: float


@dataclass
class MultistateSimulationResult:
    """Aggregate outcome over a stop sequence."""

    records: list[MultistateStopRecord]
    offline_cost: float

    @property
    def total_cost(self) -> float:
        return float(sum(record.cost for record in self.records))

    @property
    def realized_cr(self) -> float:
        if self.offline_cost <= 0.0:
            raise DegenerateStatisticsError("offline cost is zero; CR undefined")
        return self.total_cost / self.offline_cost

    def state_usage(self) -> dict[int, int]:
        """How many stops ended in each engine state."""
        usage: dict[int, int] = {}
        for record in self.records:
            usage[record.final_state] = usage.get(record.final_state, 0) + 1
        return usage


def _final_state(switch_times, stop_length: float) -> int:
    state = 0
    for next_state, t in enumerate(switch_times, start=1):
        if stop_length < t:
            break
        state = next_state
    return state


class EnvelopeController:
    """Deterministic multislope controller: follow the offline envelope.

    The switch profile has one entry per state; a state the envelope
    skips gets the same switch time as the next state actually entered
    (entering and immediately advancing pays the same telescoped switch
    cost as skipping directly).  States past the envelope's deepest
    reachable state get ``inf`` (never entered).
    """

    def __init__(self, problem: MultislopeProblem) -> None:
        self.problem = problem
        self._times = self._full_arity_profile(problem)

    @staticmethod
    def _full_arity_profile(problem: MultislopeProblem) -> tuple[float, ...]:
        state_count = len(problem.slopes)
        entered_at = {0: 0.0}
        state = 0
        for boundary in problem.transition_points:
            state = problem._next_envelope_state(state)
            entered_at[state] = boundary
        times = []
        for j in range(1, state_count):
            later = [entered_at[s] for s in entered_at if s >= j]
            times.append(min(later) if later else np.inf)
        return tuple(times)

    def profile_for_stop(self, rng: np.random.Generator) -> tuple[float, ...]:
        return self._times


class RandomizedMultislopeController:
    """Randomized multislope controller: one profile draw per stop from
    the LP-optimal mixture."""

    def __init__(
        self, problem: MultislopeProblem, solution: MultislopeGameSolution
    ) -> None:
        if len(solution.pure_strategies[0]) != len(problem.slopes) - 1:
            raise InvalidParameterError(
                "game solution arity does not match the multislope problem"
            )
        self.problem = problem
        self.solution = solution
        self._profiles = solution.pure_strategies
        weights = np.clip(np.asarray(solution.weights, dtype=float), 0.0, None)
        total = weights.sum()
        if total <= 0.0:
            raise InvalidParameterError("game solution carries no probability mass")
        self._weights = weights / total

    def profile_for_stop(self, rng: np.random.Generator) -> tuple[float, ...]:
        index = rng.choice(len(self._profiles), p=self._weights)
        return self._profiles[index]


def simulate_multistate(
    problem: MultislopeProblem,
    stop_lengths: np.ndarray,
    controller,
    rng: np.random.Generator | None = None,
) -> MultistateSimulationResult:
    """Run a multistate controller over a stop sequence.

    ``controller`` must expose ``profile_for_stop(rng)``; the offline
    reference is the multislope envelope ``OPT(y)`` summed over stops.
    """
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot simulate zero stops")
    if rng is None:
        rng = np.random.default_rng(0)
    records = []
    for stop_length in y:
        profile = tuple(controller.profile_for_stop(rng))
        cost = pure_strategy_cost(problem, profile, float(stop_length))
        records.append(
            MultistateStopRecord(
                stop_length=float(stop_length),
                switch_times=profile,
                final_state=_final_state(profile, float(stop_length)),
                cost=cost,
            )
        )
    offline = float(sum(problem.offline_cost(float(v)) for v in y))
    return MultistateSimulationResult(records=records, offline_cost=offline)
