"""Stop-start controllers: online and clairvoyant offline.

A controller answers one question per stop: *how long do we idle before
shutting the engine off?*  The online controller draws that threshold
from a :class:`~repro.core.strategy.Strategy` (fresh draw per stop, as
the paper's randomized algorithms require); the offline controller peeks
at the true stop length and plays the Eq. (2) optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.costs import validate_break_even, validate_stop_length
from ..core.strategy import Strategy

__all__ = [
    "StopDecision",
    "StopStartController",
    "ObservingController",
    "OfflineController",
]


@dataclass(frozen=True)
class StopDecision:
    """Outcome of one stop under some controller.

    Attributes
    ----------
    stop_length:
        True stop length ``y`` (s).
    threshold:
        Idling threshold ``x`` the controller committed to (may be inf).
    idle_seconds:
        Engine-on idle time actually spent: ``min(y, x)``.
    restarted:
        Whether the engine was shut off and restarted (``y >= x``).
    """

    stop_length: float
    threshold: float
    idle_seconds: float
    restarted: bool

    @property
    def cost_seconds(self) -> float:
        """Normalized cost given a break-even ``B`` is implied by the
        ledger; here only the idle part — the ledger adds ``B`` per
        restart.  Exposed for per-decision inspection."""
        return self.idle_seconds

    def total_cost(self, break_even: float) -> float:
        """The full Eq. (1) cost of this decision: idle time plus the
        restart penalty ``B`` when the engine was shut off."""
        return self.idle_seconds + (break_even if self.restarted else 0.0)


class StopStartController:
    """Applies an online strategy to a stream of stops.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.core.strategy.Strategy`; a fresh threshold is
        drawn for every stop.
    rng:
        Random generator for the strategy's draws (required only for
        randomized strategies; a fixed default keeps runs reproducible).
    """

    def __init__(self, strategy: Strategy, rng: np.random.Generator | None = None) -> None:
        self.strategy = strategy
        self.rng = rng if rng is not None else np.random.default_rng(0)
        validate_break_even(strategy.break_even)

    def decide(self, stop_length: float) -> StopDecision:
        """Handle one stop: draw the threshold, compute what happens."""
        return self.apply(stop_length, self.strategy.draw_threshold(self.rng))

    def apply(self, stop_length: float, threshold: float) -> StopDecision:
        """Resolve one stop against an already-drawn threshold — the
        entry point for batched draws (:meth:`Strategy.draw_thresholds`)."""
        y = validate_stop_length(stop_length)
        x = float(threshold)
        if y < x:
            return StopDecision(
                stop_length=y, threshold=x, idle_seconds=y, restarted=False
            )
        return StopDecision(stop_length=y, threshold=x, idle_seconds=x, restarted=True)


class ObservingController(StopStartController):
    """A controller that closes the online learning loop.

    After every decision the completed stop's true length is fed back to
    the strategy's ``observe`` hook (if it has one) — the protocol
    :class:`~repro.core.adaptive.AdaptiveProposed` and the advisor
    service's sessions require: decide first, learn afterwards, exactly
    once per stop.
    """

    def decide(self, stop_length: float) -> StopDecision:
        decision = super().decide(stop_length)
        observe = getattr(self.strategy, "observe", None)
        if observe is not None:
            observe(decision.stop_length)
        return decision


class OfflineController:
    """The clairvoyant optimum (Eq. 2): idle through short stops, shut
    off immediately for stops of length >= B."""

    def __init__(self, break_even: float) -> None:
        self.break_even = validate_break_even(break_even)

    def decide(self, stop_length: float) -> StopDecision:
        y = validate_stop_length(stop_length)
        if y < self.break_even:
            return StopDecision(
                stop_length=y, threshold=math.inf, idle_seconds=y, restarted=False
            )
        return StopDecision(stop_length=y, threshold=0.0, idle_seconds=0.0, restarted=True)
