"""Event-level stop-start controller simulation and cost accounting."""

from .accounting import CostLedger
from .controller import (
    ObservingController,
    OfflineController,
    StopDecision,
    StopStartController,
)
from .engine_sim import SimulationResult, realized_cr, simulate_stops, simulate_trace
from .multistate import (
    EnvelopeController,
    MultistateSimulationResult,
    MultistateStopRecord,
    RandomizedMultislopeController,
    simulate_multistate,
)

__all__ = [
    "CostLedger",
    "StopDecision",
    "StopStartController",
    "ObservingController",
    "OfflineController",
    "SimulationResult",
    "simulate_stops",
    "simulate_trace",
    "realized_cr",
    "MultistateStopRecord",
    "MultistateSimulationResult",
    "EnvelopeController",
    "RandomizedMultislopeController",
    "simulate_multistate",
]
