"""Event-level stop-start simulation over driving records.

This is the executable counterpart of the competitive analysis: run an
online controller and the clairvoyant controller over the same stop
sequence, account every idle second and restart in a
:class:`~repro.simulation.accounting.CostLedger`, and report the realized
competitive ratio.  The analytic layer (:mod:`repro.core.analysis`)
predicts these numbers in expectation; the tests assert they agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.strategy import Strategy
from ..errors import DegenerateStatisticsError, InvalidParameterError, SimulationError
from ..traces.events import DrivingTrace
from ..vehicle.costmodel import VehicleCostModel
from .accounting import CostLedger
from .controller import OfflineController, StopDecision, StopStartController

__all__ = ["SimulationResult", "simulate_stops", "simulate_trace", "realized_cr"]


@dataclass
class SimulationResult:
    """Outcome of running one controller over a stop sequence."""

    controller_name: str
    ledger: CostLedger
    decisions: list[StopDecision]

    @property
    def total_cost_seconds(self) -> float:
        return self.ledger.total_cost_seconds

    @property
    def mean_cost_seconds(self) -> float:
        if self.ledger.stops == 0:
            raise SimulationError("no stops were simulated")
        return self.total_cost_seconds / self.ledger.stops

    def cost_cents(self, cost_model: VehicleCostModel) -> float:
        """Monetary cost under a vehicle cost model."""
        return self.ledger.cost_cents(cost_model)

    def fuel_cc(self, cost_model: VehicleCostModel) -> float:
        """Physical fuel burned under a vehicle cost model."""
        return self.ledger.fuel_cc(cost_model)


def simulate_stops(
    stop_lengths: np.ndarray,
    strategy: Strategy | None = None,
    break_even: float | None = None,
    rng: np.random.Generator | None = None,
) -> SimulationResult:
    """Run a controller over a stop-length sequence.

    With ``strategy`` given, an online :class:`StopStartController` runs;
    with ``strategy=None`` (and ``break_even`` given) the clairvoyant
    :class:`OfflineController` runs instead.
    """
    y = np.asarray(stop_lengths, dtype=float)
    if y.size == 0:
        raise InvalidParameterError("cannot simulate zero stops")
    if strategy is not None:
        controller = StopStartController(strategy, rng)
        b = strategy.break_even
        name = strategy.name
    else:
        if break_even is None:
            raise InvalidParameterError(
                "offline simulation needs an explicit break_even"
            )
        controller = OfflineController(break_even)
        b = controller.break_even
        name = "offline"
    ledger = CostLedger(break_even=b)
    decisions = []
    if strategy is not None:
        # One batched draw for the whole sequence (same RNG stream as
        # per-stop draws); the ledger still records sequentially so
        # totals accumulate in the same order as before.
        thresholds = strategy.draw_thresholds(y.size, controller.rng)
        for stop_length, threshold in zip(y, thresholds):
            decision = controller.apply(float(stop_length), float(threshold))
            ledger.record_stop(decision.idle_seconds, decision.restarted)
            decisions.append(decision)
    else:
        for stop_length in y:
            decision = controller.decide(float(stop_length))
            ledger.record_stop(decision.idle_seconds, decision.restarted)
            decisions.append(decision)
    return SimulationResult(controller_name=name, ledger=ledger, decisions=decisions)


def simulate_trace(
    trace: DrivingTrace,
    strategy: Strategy | None = None,
    break_even: float | None = None,
    rng: np.random.Generator | None = None,
) -> SimulationResult:
    """Run a controller over a full driving record (all its stops, in
    chronological order)."""
    return simulate_stops(trace.stop_lengths(), strategy, break_even, rng)


def realized_cr(online: SimulationResult, offline: SimulationResult) -> float:
    """Realized competitive ratio: total online cost / total offline cost.

    This is the event-level analogue of Eq. (5); with enough stops it
    converges to the analytic expected CR (asserted by the integration
    tests).
    """
    if abs(online.ledger.break_even - offline.ledger.break_even) > 1e-12:
        raise InvalidParameterError(
            "online and offline simulations used different break-even intervals"
        )
    denominator = offline.total_cost_seconds
    if denominator <= 0.0:
        raise DegenerateStatisticsError(
            "offline cost is zero (all stops were zero-length); CR undefined"
        )
    return online.total_cost_seconds / denominator
