"""Drive-cycle generation: trips over a road network to speed profiles.

:class:`DriveCycleSimulator` turns (network, congestion, driver) into
second-resolution speed traces, then into full
:class:`~repro.traces.events.DrivingTrace` records via the same stop
extraction used on measured data — so the synthetic pipeline exercises
the identical code path a real NREL-style dataset would.

Kinematics are trapezoidal: accelerate at the driver's comfortable rate,
cruise at the congestion-adjusted speed, brake to a stop at nodes that
demand one (red signals, errands) and roll through green signals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..traces.events import SECONDS_PER_DAY, DrivingTrace, Trip
from ..traces.speed import SpeedTrace, extract_stops
from .driver import DriverProfile
from .road import RoadNetwork
from .traffic import CongestionModel

__all__ = ["DriveCycleSimulator", "TripResult"]


def _segment_speeds(
    cruise_speed: float,
    length: float,
    acceleration: float,
    deceleration: float,
    stop_at_end: bool,
    entry_speed: float,
) -> tuple[list[float], float]:
    """Per-second speed samples for one road segment.

    Returns the samples and the exit speed.  The profile accelerates from
    ``entry_speed`` toward ``cruise_speed``, cruises, and brakes to zero
    at the end when ``stop_at_end``; distances are integrated per sample
    so total distance approximates ``length``.
    """
    speeds: list[float] = []
    distance = 0.0
    speed = entry_speed
    # Distance needed to brake from cruise speed.
    while distance < length:
        remaining = length - distance
        braking_distance = speed * speed / (2.0 * deceleration) if stop_at_end else 0.0
        if stop_at_end and remaining <= braking_distance + speed:
            speed = max(0.0, speed - deceleration)
        elif speed < cruise_speed:
            speed = min(cruise_speed, speed + acceleration)
        elif speed > cruise_speed:
            speed = max(cruise_speed, speed - deceleration)
        speeds.append(speed)
        distance += speed
        if speed <= 0.0:
            break
        if len(speeds) > 100000:  # pragma: no cover - guard against hangs
            raise SimulationError("segment kinematics failed to terminate")
    if stop_at_end:
        # Finish braking even if the distance budget ran out mid-brake
        # (a small positional overshoot is irrelevant at this fidelity;
        # ending at rest is what the stop extraction needs).
        while speed > 0.0:
            speed = max(0.0, speed - deceleration)
            speeds.append(speed)
    exit_speed = 0.0 if stop_at_end else speed
    return speeds, exit_speed


@dataclass(frozen=True)
class TripResult:
    """One simulated trip: its speed profile and bookkeeping."""

    speed_trace: SpeedTrace
    route_nodes: tuple
    signal_stops: int
    errand_stops: int
    wave_stops: int


class DriveCycleSimulator:
    """Generates speed traces and full driving records.

    Parameters
    ----------
    network:
        Road network to route over.
    congestion:
        Area congestion model.
    driver:
        Driver behaviour profile.
    dt:
        Sampling period of the generated speed traces (s).
    """

    def __init__(
        self,
        network: RoadNetwork,
        congestion: CongestionModel | None = None,
        driver: DriverProfile | None = None,
        dt: float = 1.0,
    ) -> None:
        self.network = network
        self.congestion = congestion if congestion is not None else CongestionModel()
        self.driver = driver if driver is not None else DriverProfile()
        if dt != 1.0:
            raise SimulationError(
                "the kinematic integrator is defined at 1 Hz; dt must be 1.0"
            )
        self.dt = dt

    def simulate_trip(
        self,
        rng: np.random.Generator,
        start_time: float = 0.0,
        origin=None,
        destination=None,
    ) -> TripResult:
        """Simulate one trip; endpoints default to a random pair."""
        if origin is None or destination is None:
            origin, destination = self.network.random_node_pair(rng)
        route = self.network.route(origin, destination)
        if len(route) < 2:
            raise SimulationError("route must span at least one segment")
        errand_node_index = None
        if self.driver.wants_errand(rng) and len(route) > 2:
            errand_node_index = int(rng.integers(1, len(route) - 1))
        speeds: list[float] = []
        signal_stops = errand_stops = wave_stops = 0
        entry_speed = 0.0
        clock = start_time
        for hop, (u, v) in enumerate(zip(route, route[1:])):
            data = self.network.edge_data(u, v)
            cruise = self.congestion.effective_speed(data["speed_limit"])
            # Mid-block stop-and-go wave?
            wave = self.congestion.wave_stop(rng)
            node_index = hop + 1
            is_last = node_index == len(route) - 1
            is_errand = node_index == errand_node_index
            signal = self.network.signal_at(v)
            arrival_estimate = clock + data["length"] / max(cruise, 0.1)
            signal_wait = signal.wait_time(arrival_estimate) if signal else 0.0
            dwell = 0.0
            if signal_wait > 0.0:
                dwell += signal_wait + self.congestion.queue_delay(rng)
                signal_stops += 1
            if is_errand:
                dwell += self.driver.errand_duration(rng)
                errand_stops += 1
            stop_at_end = is_last or dwell > 0.0
            if wave > 0.0:
                # Split the segment around the wave stop.
                half = data["length"] / 2.0
                first, _ = _segment_speeds(
                    cruise, half, self.driver.acceleration, self.driver.deceleration,
                    stop_at_end=True, entry_speed=entry_speed,
                )
                speeds.extend(first)
                speeds.extend([0.0] * max(1, int(round(wave))))
                second, entry_speed = _segment_speeds(
                    cruise, half, self.driver.acceleration, self.driver.deceleration,
                    stop_at_end=stop_at_end, entry_speed=0.0,
                )
                speeds.extend(second)
                wave_stops += 1
            else:
                samples, entry_speed = _segment_speeds(
                    cruise, data["length"], self.driver.acceleration,
                    self.driver.deceleration, stop_at_end=stop_at_end,
                    entry_speed=entry_speed,
                )
                speeds.extend(samples)
            if dwell > 0.0 and not is_last:
                speeds.extend([0.0] * max(1, int(round(dwell))))
                entry_speed = 0.0
            clock = start_time + len(speeds) * self.dt
        if not speeds:
            raise SimulationError("trip produced no speed samples")
        trace = SpeedTrace(start_time=start_time, dt=self.dt, speeds=np.asarray(speeds))
        return TripResult(
            speed_trace=trace,
            route_nodes=tuple(route),
            signal_stops=signal_stops,
            errand_stops=errand_stops,
            wave_stops=wave_stops,
        )

    def simulate_vehicle(
        self,
        vehicle_id: str,
        days: int,
        rng: np.random.Generator,
        area: str | None = None,
    ) -> DrivingTrace:
        """Simulate ``days`` of driving and assemble a DrivingTrace.

        Trips are scheduled sequentially within a 06:00-22:00 window each
        day; stops come from :func:`~repro.traces.speed.extract_stops` on
        the generated speed profiles — the same extraction measured data
        goes through.
        """
        if days <= 0:
            raise SimulationError(f"days must be >= 1, got {days}")
        trips: list[Trip] = []
        for day in range(days):
            day_base = day * SECONDS_PER_DAY
            cursor = day_base + 6 * 3600.0
            day_end = day_base + 22 * 3600.0
            for _ in range(self.driver.daily_trip_count(rng)):
                cursor += float(rng.exponential(1800.0))  # gap between trips
                if cursor >= day_end:
                    break
                result = self.simulate_trip(rng, start_time=cursor)
                trace = result.speed_trace
                stops = extract_stops(trace)
                trips.append(
                    Trip(
                        start_time=trace.start_time,
                        duration=trace.duration,
                        stops=tuple(stops),
                    )
                )
                cursor = trace.start_time + trace.duration
        return DrivingTrace(
            vehicle_id=vehicle_id,
            trips=tuple(trips),
            recording_days=float(days),
            area=area,
        )
