"""Road network model on top of :mod:`networkx`.

The drive-cycle generator routes trips over a grid of city blocks:
nodes are intersections (optionally signalized), edges are road segments
with a length and a speed limit.  :func:`grid_network` builds the default
Manhattan-style grid used by the synthetic fleets; arbitrary networkx
graphs with the same attribute schema also work.

Attribute schema
----------------
* node attribute ``"signal"``: a
  :class:`~repro.drivecycle.signals.TrafficSignal` or ``None``;
* edge attributes ``"length"`` (m) and ``"speed_limit"`` (m/s).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..errors import InvalidParameterError, SimulationError
from .signals import TrafficSignal

__all__ = ["RoadNetwork", "grid_network"]


class RoadNetwork:
    """A validated wrapper around a networkx graph of roads."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() < 2:
            raise InvalidParameterError("road network needs at least two intersections")
        for u, v, data in graph.edges(data=True):
            if data.get("length", 0.0) <= 0.0:
                raise InvalidParameterError(f"edge {(u, v)} has non-positive length")
            if data.get("speed_limit", 0.0) <= 0.0:
                raise InvalidParameterError(f"edge {(u, v)} has non-positive speed limit")
        if not nx.is_connected(graph):
            raise InvalidParameterError("road network must be connected")
        self.graph = graph

    @property
    def intersections(self) -> list:
        return list(self.graph.nodes)

    def signal_at(self, node) -> TrafficSignal | None:
        """The signal controlling ``node``, or None if unsignalized."""
        return self.graph.nodes[node].get("signal")

    def signalized_count(self) -> int:
        return sum(1 for node in self.graph.nodes if self.signal_at(node) is not None)

    def route(self, origin, destination) -> list:
        """Shortest route by travel time (length / speed limit)."""
        if origin not in self.graph or destination not in self.graph:
            raise SimulationError(f"unknown endpoint: {origin!r} -> {destination!r}")
        return nx.shortest_path(
            self.graph,
            origin,
            destination,
            weight=lambda u, v, data: data["length"] / data["speed_limit"],
        )

    def edge_data(self, u, v) -> dict:
        try:
            return self.graph.edges[u, v]
        except KeyError as exc:
            raise SimulationError(f"no road segment between {u!r} and {v!r}") from exc

    def random_node_pair(self, rng: np.random.Generator, min_hops: int = 2) -> tuple:
        """Draw a random origin/destination pair at least ``min_hops``
        apart (so trips have room for en-route stops)."""
        nodes = self.intersections
        for _ in range(200):
            origin, destination = rng.choice(len(nodes), size=2, replace=False)
            origin, destination = nodes[origin], nodes[destination]
            if nx.shortest_path_length(self.graph, origin, destination) >= min_hops:
                return origin, destination
        raise SimulationError(
            f"could not find node pair at least {min_hops} hops apart"
        )


def grid_network(
    rows: int = 6,
    cols: int = 6,
    block_length: float = 250.0,
    speed_limit: float = 13.9,
    signal_density: float = 0.6,
    rng: np.random.Generator | None = None,
) -> RoadNetwork:
    """A rows x cols Manhattan grid with randomly signalized intersections.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (intersections per side).
    block_length:
        Segment length in meters (250 m ≈ a US city block).
    speed_limit:
        Segment speed limit in m/s (13.9 m/s = 50 km/h).
    signal_density:
        Probability that an intersection carries a traffic signal.
    rng:
        Random generator for signal placement and timing; defaults to a
        fixed seed so the default network is reproducible.
    """
    if rows < 2 or cols < 2:
        raise InvalidParameterError("grid needs at least 2x2 intersections")
    if not 0.0 <= signal_density <= 1.0:
        raise InvalidParameterError(
            f"signal_density must lie in [0, 1], got {signal_density!r}"
        )
    if rng is None:
        rng = np.random.default_rng(2014)
    graph = nx.grid_2d_graph(rows, cols)
    for _, _, data in graph.edges(data=True):
        data["length"] = float(block_length)
        data["speed_limit"] = float(speed_limit)
    for node in graph.nodes:
        if rng.uniform() < signal_density:
            graph.nodes[node]["signal"] = TrafficSignal(
                cycle_length=float(rng.uniform(60.0, 120.0)),
                green_fraction=float(rng.uniform(0.35, 0.65)),
                offset=float(rng.uniform(0.0, 120.0)),
            )
        else:
            graph.nodes[node]["signal"] = None
    return RoadNetwork(graph)
