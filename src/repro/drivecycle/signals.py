"""Traffic signal timing model.

Signalized intersections are the dominant source of short-to-medium stops
(the mass below the break-even interval in Figure 3).  Each signal runs a
fixed cycle: ``green_fraction`` of ``cycle_length`` seconds green, the rest
red, shifted by ``offset``.  A vehicle arriving during red waits out the
remaining red time; during green it passes unimpeded (queue delays are
modelled separately in :mod:`repro.drivecycle.traffic`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["TrafficSignal"]


@dataclass(frozen=True)
class TrafficSignal:
    """A fixed-time traffic signal.

    Attributes
    ----------
    cycle_length:
        Full signal cycle in seconds (typical urban values: 60-120 s).
    green_fraction:
        Fraction of the cycle that is green for our approach, in (0, 1).
    offset:
        Phase offset in seconds (coordination between intersections).
    """

    cycle_length: float = 90.0
    green_fraction: float = 0.5
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.cycle_length) or self.cycle_length <= 0.0:
            raise InvalidParameterError(
                f"cycle_length must be > 0, got {self.cycle_length!r}"
            )
        if not 0.0 < self.green_fraction < 1.0:
            raise InvalidParameterError(
                f"green_fraction must lie in (0, 1), got {self.green_fraction!r}"
            )
        if not np.isfinite(self.offset):
            raise InvalidParameterError(f"offset must be finite, got {self.offset!r}")

    @property
    def green_time(self) -> float:
        return self.cycle_length * self.green_fraction

    @property
    def red_time(self) -> float:
        return self.cycle_length - self.green_time

    def phase_at(self, time: float) -> float:
        """Position within the cycle at ``time`` (0 = start of green)."""
        return (time - self.offset) % self.cycle_length

    def is_green(self, time: float) -> bool:
        """True when the signal shows green at ``time``."""
        return self.phase_at(time) < self.green_time

    def wait_time(self, arrival_time: float) -> float:
        """Seconds a vehicle arriving at ``arrival_time`` must wait.

        Zero during green; the remaining red time during red.
        """
        phase = self.phase_at(arrival_time)
        if phase < self.green_time:
            return 0.0
        return self.cycle_length - phase

    def expected_wait(self) -> float:
        """Mean wait over a uniformly random arrival: ``red² / (2 cycle)``."""
        return self.red_time**2 / (2.0 * self.cycle_length)
