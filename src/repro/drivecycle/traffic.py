"""Congestion model: how traffic load stretches travel and dwell times.

A single ``level`` in [0, 1] captures area-wide congestion:

* cruise speeds drop linearly with level (down to 30% of free flow);
* signalized stops gain a queue-discharge delay (vehicles ahead must
  clear) drawn from an exponential whose mean grows with level;
* mid-block congestion stops (stop-and-go waves) occur per segment with a
  probability and duration that grow with level.

The model is deliberately low-order: the competitive analysis only ever
sees the resulting stop-length sample, and the paper's Figures 5-6 sweep
"traffic conditions" exactly this way (same shape, scaled mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["CongestionModel"]


@dataclass(frozen=True)
class CongestionModel:
    """Area congestion with a single severity knob.

    Attributes
    ----------
    level:
        Congestion severity in [0, 1]: 0 = free flow, 1 = gridlock-ish.
    queue_delay_scale:
        Mean queue-discharge delay (s) at a red signal when level = 1.
    wave_probability_scale:
        Per-segment probability of a stop-and-go wave when level = 1.
    wave_duration_mean:
        Mean duration (s) of a stop-and-go wave stop.
    """

    level: float = 0.3
    queue_delay_scale: float = 45.0
    wave_probability_scale: float = 0.25
    wave_duration_mean: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise InvalidParameterError(f"level must lie in [0, 1], got {self.level!r}")
        for name in ("queue_delay_scale", "wave_probability_scale", "wave_duration_mean"):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0.0:
                raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")
        if self.wave_probability_scale > 1.0:
            raise InvalidParameterError(
                f"wave_probability_scale must be <= 1, got {self.wave_probability_scale!r}"
            )

    def effective_speed(self, speed_limit: float) -> float:
        """Cruise speed under congestion: linear drop to 30% of free flow."""
        if speed_limit <= 0.0:
            raise InvalidParameterError(f"speed_limit must be > 0, got {speed_limit!r}")
        return speed_limit * (1.0 - 0.7 * self.level)

    def queue_delay(self, rng: np.random.Generator) -> float:
        """Extra dwell at a red signal while the queue ahead discharges."""
        mean = self.queue_delay_scale * self.level
        if mean <= 0.0:
            return 0.0
        return float(rng.exponential(mean))

    def wave_stop(self, rng: np.random.Generator) -> float:
        """Duration of a mid-block stop-and-go stop on one segment, or 0.0
        when no wave hits this segment."""
        probability = self.wave_probability_scale * self.level
        if probability <= 0.0 or rng.uniform() >= probability:
            return 0.0
        return float(rng.exponential(self.wave_duration_mean))
