"""Synthetic drive-cycle generation: road networks, signals, congestion,
driver behaviour and the trip simulator."""

from .driver import DriverProfile
from .road import RoadNetwork, grid_network
from .signals import TrafficSignal
from .simulator import DriveCycleSimulator, TripResult
from .traffic import CongestionModel

__all__ = [
    "TrafficSignal",
    "RoadNetwork",
    "grid_network",
    "CongestionModel",
    "DriverProfile",
    "DriveCycleSimulator",
    "TripResult",
]
