"""Driver behaviour: trip frequency, errands and kinematics.

A :class:`DriverProfile` captures what varies across a fleet:

* how many trips the vehicle makes per day (Poisson);
* acceleration/deceleration capabilities (trapezoidal kinematics);
* errand behaviour — mid-route long stops (drive-throughs, pickups,
  parking with the engine on) that produce the heavy tail of the
  stop-length distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["DriverProfile"]


@dataclass(frozen=True)
class DriverProfile:
    """Per-vehicle driving behaviour parameters.

    Attributes
    ----------
    trips_per_day:
        Mean number of trips per day (Poisson rate).
    acceleration:
        Comfortable acceleration (m/s²).
    deceleration:
        Comfortable braking deceleration (m/s², positive).
    errand_probability:
        Per-trip probability of one mid-route errand stop.
    errand_duration_mean:
        Mean errand stop duration (s) — lognormal with this mean, so
        errands form the heavy tail of the stop distribution.
    errand_duration_sigma:
        Lognormal sigma of the errand duration.
    """

    trips_per_day: float = 4.0
    acceleration: float = 2.0
    deceleration: float = 2.5
    errand_probability: float = 0.15
    errand_duration_mean: float = 300.0
    errand_duration_sigma: float = 0.9

    def __post_init__(self) -> None:
        if not np.isfinite(self.trips_per_day) or self.trips_per_day <= 0.0:
            raise InvalidParameterError(
                f"trips_per_day must be > 0, got {self.trips_per_day!r}"
            )
        for name in ("acceleration", "deceleration"):
            value = getattr(self, name)
            if not np.isfinite(value) or value <= 0.0:
                raise InvalidParameterError(f"{name} must be > 0, got {value!r}")
        if not 0.0 <= self.errand_probability <= 1.0:
            raise InvalidParameterError(
                f"errand_probability must lie in [0, 1], got {self.errand_probability!r}"
            )
        if self.errand_duration_mean <= 0.0 or self.errand_duration_sigma <= 0.0:
            raise InvalidParameterError("errand duration parameters must be > 0")

    def daily_trip_count(self, rng: np.random.Generator) -> int:
        """Number of trips on one day (at least one on driving days)."""
        return int(max(1, rng.poisson(self.trips_per_day)))

    def errand_duration(self, rng: np.random.Generator) -> float:
        """One errand stop duration (s), lognormal with the configured
        mean: ``exp(m + s²/2) = errand_duration_mean``."""
        sigma = self.errand_duration_sigma
        mu = np.log(self.errand_duration_mean) - 0.5 * sigma * sigma
        return float(rng.lognormal(mu, sigma))

    def wants_errand(self, rng: np.random.Generator) -> bool:
        """Whether this trip includes a mid-route errand stop."""
        return bool(rng.uniform() < self.errand_probability)
