"""Numerical constants shared across the library.

The paper expresses every cost in units of "seconds of idling", i.e. the
idling cost per second is the unit cost and the one-time restart cost is the
break-even interval ``B`` (Eq. 1).  The two presets below come from the
Appendix C derivation, which :mod:`repro.vehicle` reproduces from first
principles.
"""

import math

#: Euler's number; the randomized ski-rental bound is ``e / (e - 1)``.
E = math.e

#: Worst-case expected competitive ratio of N-Rand (Karlin et al. 1990).
E_RATIO = E / (E - 1.0)

#: First-moment threshold of MOM-Rand (Khanafer et al. 2013): the revised
#: pdf (Eq. 9) applies when ``mu <= MOM_RAND_MU_THRESHOLD * B`` (~0.836 B).
MOM_RAND_MU_THRESHOLD = 2.0 * (E - 2.0) / (E - 1.0)

#: Break-even interval (seconds) for a stop-start vehicle (Appendix C).
B_SSV = 28.0

#: Break-even interval (seconds) for a conventional vehicle without a
#: stop-start system (Appendix C).
B_CONVENTIONAL = 47.0

#: Fuel consumed by one engine restart, expressed as seconds of idling.
#: Reported consistently across studies cited in the paper (Section 1,
#: Appendix C.2.1).
RESTART_FUEL_IDLING_SECONDS = 10.0

#: Numerical tolerance used throughout for float comparisons of costs/CRs.
TOLERANCE = 1e-9
